//! Key-sharded engine states behind one logical engine.
//!
//! With `--shards N` (or `AUSDB_SHARDS=N`) the server runs `N`
//! independent [`EngineState`]s, each behind its own mutex, and routes
//! every observation to the shard owning its key (a stable hash, so the
//! assignment survives restarts and is identical across processes).
//! Ingest for *different* keys then contends on different locks, which is
//! what lets a multi-connection ingest load scale past the single global
//! mutex the server started with.
//!
//! ## The merge invariant
//!
//! Sharding is an implementation detail, never a semantic one: for any
//! shard count, `QUERY` replies, `STATS` counts, and snapshot bytes are
//! **bit-identical** to the unsharded engine fed the same rows in the
//! same order. Three design rules make that hold:
//!
//! 1. **Shards only buffer.** A shard's per-stream learner accumulates
//!    observations but never advances a window cursor and never registers
//!    query content. The per-stream *coordinator* ([`StreamMeta`]) owns
//!    the one global cursor.
//! 2. **The coordinator drives every close with the global cursor.** A
//!    window closes exactly when an observation at/past its end arrives —
//!    the same rule as the unsharded engine — and the empty-window jump
//!    uses the *minimum* buffered timestamp across all shards. (Letting
//!    each shard keep its own cursor is provably wrong: a shard that only
//!    holds old keys would lag, mis-classify late rows, and emit windows
//!    the unsharded engine never emits.)
//! 3. **Merged output is key-sorted.** Each learner emits one tuple per
//!    key in key order and a key lives on exactly one shard, so sorting
//!    the concatenated per-shard tuples by key reproduces the unsharded
//!    learner's `BTreeMap` iteration order exactly.
//!
//! One extra `core` state owns everything cross-key: the query session
//! (registered closed windows), subscriptions, and query/event telemetry.
//!
//! ## Durability hook
//!
//! When a [`Wal`] is attached ([`ShardSet::attach_wal`]), every accepted
//! batch is appended to it **inside** the same critical section that
//! applies it (the shard mutex at one shard, the stream coordinator lock
//! otherwise) and **before** any row touches a learner — so log order
//! equals apply order, and the log stores the raw pre-routing
//! `(stream, rows)` pair so replay re-splits correctly under any shard
//! count. [`ShardSet::snapshot_with_wal_seq`] captures a snapshot plus
//! the WAL watermark under the same locks, which is what makes
//! "snapshot + replay of records past the watermark" exact.
//!
//! Lock order (strict, deadlock-free): stream map → stream coordinator →
//! WAL → shard mutexes in ascending index → core. No path acquires an
//! earlier-order lock while holding a later one.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use ausdb_learn::learner::{RawObservation, StreamLearner};
use ausdb_model::codec::FrameRow;
use ausdb_model::schema::Schema;
use ausdb_model::tuple::Tuple;
use ausdb_model::value::Value;
use ausdb_obs::{Counter, Histogram, Registry, Sample, SeriesStore};
use ausdb_wal::{Wal, WalRecord};

use crate::state::{
    align, decode_learner, encode_learner, normalize_stream_name, parse_observation, BatchOutcome,
    Counters, EngineConfig, EngineState, IngestOutcome, QueryReply, ServerSnapshot, StreamHealth,
    StreamSnapshot,
};
use crate::subscriber::SubscriberQueue;

/// Routes `key` to one of `n` shards with a stable 64-bit mix
/// (SplitMix64 finalizer). Stable across processes and architectures, so
/// snapshot restore onto a different shard count re-partitions exactly.
pub fn shard_of(key: i64, n: usize) -> usize {
    let mut x = (key as u64) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % n.max(1) as u64) as usize
}

/// Per-stream coordination state: the single global window cursor plus
/// the stream's `windows_emitted` counter handle (a series in the core
/// registry, so it renders in `METRICS` and survives restore).
#[derive(Debug)]
struct StreamMeta {
    /// Start of the currently open window; `None` until the first row.
    cursor: Option<u64>,
    /// Event-time watermark (largest timestamp seen); observational only.
    max_ts: Option<u64>,
    /// Wall-clock of the last ingest call (telemetry-gated; `HEALTH` age).
    last_ingest: Option<Instant>,
    /// Wall-clock when the open window started accumulating rows
    /// (telemetry-gated; observed into `ingest_to_close` at close).
    opened_at: Option<Instant>,
    /// `ausdb_windows_emitted_total{stream=...}` handle in the core registry.
    windows: Arc<Counter>,
    /// `ausdb_event_time_lag_seconds{stream=...}` handle in the core registry.
    event_lag: Arc<Histogram>,
    /// `ausdb_ingest_to_close_seconds{stream=...}` handle in the core registry.
    ingest_to_close: Arc<Histogram>,
}

impl StreamMeta {
    /// A fresh coordinator with its metric handles fetched from `core`.
    fn new(cursor: Option<u64>, core: &EngineState, name: &str) -> Self {
        let (event_lag, ingest_to_close) = core.lag_histograms(name);
        Self {
            cursor,
            max_ts: None,
            last_ingest: None,
            opened_at: None,
            windows: core.windows_counter(name),
            event_lag,
            ingest_to_close,
        }
    }
}

/// `N` key-sharded [`EngineState`]s presenting as one engine.
///
/// With one shard every call delegates straight to that shard — the
/// classic single-mutex layout, byte-for-byte. With more, ingest routes
/// by key hash and reads merge across shards (see the module docs for
/// the invariant that keeps the merge exact).
pub struct ShardSet {
    config: EngineConfig,
    nshards: usize,
    shards: Vec<Mutex<EngineState>>,
    /// Per-stream coordinators, created on a stream's first valid row.
    streams: Mutex<BTreeMap<String, Arc<Mutex<StreamMeta>>>>,
    /// Cross-key state: query session, subscriptions, query telemetry.
    core: Mutex<EngineState>,
    /// Write-ahead log, attached once after recovery replay (so replay
    /// itself never re-logs). Absent when the server runs without
    /// `--wal-dir`.
    wal: OnceLock<Mutex<Wal>>,
}

/// How [`ShardSet::ingest_batch_inner`] treats the WAL for one batch.
#[derive(Debug, Clone, Copy)]
enum WalMode {
    /// Append with the next sequence number (live ingest).
    Log,
    /// Append with exactly this sequence number (follower replication).
    At(u64),
    /// Do not touch the log (recovery replay — the record is already there).
    Skip,
}

/// Locks a mutex, recovering from poisoning (a panicking connection
/// thread must not take the server down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ShardSet {
    /// Creates `config.shards` engine states (minimum 1).
    pub fn new(config: EngineConfig) -> Self {
        let nshards = config.shards.max(1);
        Self {
            config,
            nshards,
            shards: (0..nshards).map(|_| Mutex::new(EngineState::new(config))).collect(),
            streams: Mutex::new(BTreeMap::new()),
            core: Mutex::new(EngineState::new(config)),
            wal: OnceLock::new(),
        }
    }

    /// Attaches the write-ahead log. Call once, after recovery replay —
    /// every subsequent accepted batch is logged before it is applied.
    ///
    /// # Panics
    ///
    /// Panics if a WAL is already attached.
    pub fn attach_wal(&self, wal: Wal) {
        assert!(self.wal.set(Mutex::new(wal)).is_ok(), "attach_wal called twice");
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Mutex<Wal>> {
        self.wal.get()
    }

    /// Appends one accepted batch to the WAL per `mode`. Callers hold the
    /// critical-section lock (shard 0's mutex or the stream coordinator),
    /// so log order equals apply order.
    fn wal_append(&self, name: &str, rows: &[RawObservation], mode: WalMode) -> Result<(), String> {
        if matches!(mode, WalMode::Skip) || rows.is_empty() {
            return Ok(());
        }
        let Some(wal) = self.wal.get() else { return Ok(()) };
        let mut wal = lock(wal);
        match mode {
            WalMode::Log => {
                // Encode straight from the observations — no intermediate
                // row vector on the hot path.
                wal.append_iter(name, rows.iter().map(|r| (r.key, r.ts, r.value)))
                    .map_err(|e| format!("wal append: {e}"))?;
            }
            WalMode::At(seq) => {
                let frame: Vec<FrameRow> = rows.iter().map(|r| (r.key, r.ts, r.value)).collect();
                let rec = WalRecord { seq, stream: name.to_string(), rows: frame };
                wal.append_at(&rec).map_err(|e| format!("wal append: {e}"))?;
            }
            WalMode::Skip => unreachable!("handled above"),
        }
        Ok(())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// Fetches (or creates) the coordinator for stream `name`.
    fn stream_meta(&self, name: &str) -> Arc<Mutex<StreamMeta>> {
        let mut map = lock(&self.streams);
        if let Some(meta) = map.get(name) {
            return Arc::clone(meta);
        }
        let meta = Arc::new(Mutex::new(StreamMeta::new(None, &lock(&self.core), name)));
        map.insert(name.to_string(), Arc::clone(&meta));
        meta
    }

    /// Ingests one `key,ts,value` row into `stream`.
    pub fn ingest(&self, stream: &str, row: &str) -> Result<IngestOutcome, String> {
        let obs = parse_observation(row)?;
        let name = normalize_stream_name(stream)?;
        if self.nshards == 1 {
            let mut g = lock(&self.shards[0]);
            self.wal_append(&name, std::slice::from_ref(&obs), WalMode::Log)?;
            let (_, windows_emitted) = g.ingest_observation(&name, obs)?;
            g.note_ingest(&name);
            return Ok(IngestOutcome { windows_emitted });
        }
        let meta_arc = self.stream_meta(&name);
        let mut meta = lock(&meta_arc);
        self.wal_append(&name, std::slice::from_ref(&obs), WalMode::Log)?;
        let late = meta.cursor.is_some_and(|ws| obs.ts < ws);
        lock(&self.shards[shard_of(obs.key, self.nshards)]).observe_sharded(&name, obs, late);
        if meta.cursor.is_none() {
            meta.cursor = Some(align(obs.ts, self.config.learner.window_width));
        }
        meta.max_ts = Some(meta.max_ts.map_or(obs.ts, |m| m.max(obs.ts)));
        meta.last_ingest = ausdb_obs::now_if_enabled();
        if meta.opened_at.is_none() {
            meta.opened_at = meta.last_ingest;
        }
        let windows_emitted = self.close_global(&name, &mut meta, obs.ts)?;
        Ok(IngestOutcome { windows_emitted })
    }

    /// Ingests a pre-parsed batch as if each row arrived as its own
    /// `INGEST` line, in order. Rows are applied in the longest runs that
    /// cannot close the open window, so each such run takes one shard
    /// lock per shard instead of one per row — the serial equivalence is
    /// by construction (a row that cannot close a window only buffers,
    /// and the late verdict is constant while the cursor is).
    pub fn ingest_batch(
        &self,
        stream: &str,
        rows: &[RawObservation],
    ) -> Result<BatchOutcome, String> {
        self.ingest_batch_inner(stream, rows, WalMode::Log)
    }

    /// Re-applies a batch during crash recovery. Identical to
    /// [`ShardSet::ingest_batch`] except the WAL is left untouched — the
    /// record being replayed is already in it.
    pub fn apply_replayed(
        &self,
        stream: &str,
        rows: &[RawObservation],
    ) -> Result<BatchOutcome, String> {
        self.ingest_batch_inner(stream, rows, WalMode::Skip)
    }

    /// Applies a record streamed from a replication primary, logging it
    /// locally **at the primary's sequence number** so the follower's WAL
    /// is a byte-identical suffix of the primary's and promotion needs no
    /// renumbering.
    pub fn apply_replicated(&self, rec: &WalRecord) -> Result<BatchOutcome, String> {
        let rows: Vec<RawObservation> =
            rec.rows.iter().map(|&(k, t, v)| RawObservation::new(k, t, v)).collect();
        self.ingest_batch_inner(&rec.stream, &rows, WalMode::At(rec.seq))
    }

    fn ingest_batch_inner(
        &self,
        stream: &str,
        rows: &[RawObservation],
        mode: WalMode,
    ) -> Result<BatchOutcome, String> {
        let name = normalize_stream_name(stream)?;
        for (i, r) in rows.iter().enumerate() {
            if !r.value.is_finite() {
                return Err(format!("row {i}: non-finite value {}", r.value));
            }
        }
        if self.nshards == 1 {
            let mut g = lock(&self.shards[0]);
            self.wal_append(&name, rows, mode)?;
            return g.ingest_batch(&name, rows);
        }
        let width = self.config.learner.window_width;
        let meta_arc = self.stream_meta(&name);
        let mut meta = lock(&meta_arc);
        self.wal_append(&name, rows, mode)?;
        if let Some(batch_max) = rows.iter().map(|r| r.ts).max() {
            meta.max_ts = Some(meta.max_ts.map_or(batch_max, |m| m.max(batch_max)));
            meta.last_ingest = ausdb_obs::now_if_enabled();
            if meta.opened_at.is_none() {
                meta.opened_at = meta.last_ingest;
            }
        }
        let mut out = BatchOutcome::default();
        let mut by_shard: Vec<Vec<(RawObservation, bool)>> = vec![Vec::new(); self.nshards];
        let mut i = 0;
        while i < rows.len() {
            if meta.cursor.is_none() {
                meta.cursor = Some(align(rows[i].ts, width));
            }
            let ws = meta.cursor.expect("cursor just ensured");
            let end = ws.saturating_add(width);
            // Longest prefix that only buffers (no row at/past the window end).
            let mut j = i;
            while j < rows.len() && rows[j].ts < end {
                j += 1;
            }
            if j > i {
                for s in &mut by_shard {
                    s.clear();
                }
                for &obs in &rows[i..j] {
                    let late = obs.ts < ws;
                    out.late += u64::from(late);
                    by_shard[shard_of(obs.key, self.nshards)].push((obs, late));
                }
                for (sh, batch) in by_shard.iter().enumerate() {
                    if !batch.is_empty() {
                        let mut guard = lock(&self.shards[sh]);
                        for &(obs, late) in batch {
                            guard.observe_sharded(&name, obs, late);
                        }
                    }
                }
                out.accepted += (j - i) as u64;
            }
            if j < rows.len() {
                // The closing row: buffer it (never late — its timestamp is
                // at/past the window end), then drive the global close.
                let obs = rows[j];
                lock(&self.shards[shard_of(obs.key, self.nshards)])
                    .observe_sharded(&name, obs, false);
                out.accepted += 1;
                out.windows_emitted += self.close_global(&name, &mut meta, obs.ts)?;
                j += 1;
            }
            i = j;
        }
        Ok(out)
    }

    /// Closes every window `through_ts` has moved past, merging each
    /// window's tuples across shards and registering non-empty ones on
    /// the core. Caller holds the stream's coordinator lock.
    fn close_global(
        &self,
        name: &str,
        meta: &mut StreamMeta,
        through_ts: u64,
    ) -> Result<u64, String> {
        let width = self.config.learner.window_width;
        let mut emitted = 0u64;
        loop {
            let ws = meta.cursor.expect("cursor set on first row");
            if through_ts < ws.saturating_add(width) {
                break;
            }
            let (merged, schema, global_min, late_rows) = {
                let mut guards: Vec<MutexGuard<'_, EngineState>> =
                    self.shards.iter().map(lock).collect();
                let mut merged = Vec::new();
                let mut schema: Option<Schema> = None;
                for g in guards.iter_mut() {
                    let tuples = g.emit_stream_window(name, ws)?;
                    if schema.is_none() {
                        if let Some(l) = g.learner_for(name) {
                            schema = Some(l.schema().clone());
                        }
                    }
                    merged.extend(tuples);
                }
                // One tuple per key, each key on exactly one shard: sorting
                // by key reproduces the unsharded BTreeMap emission order.
                merged.sort_unstable_by_key(tuple_key);
                let global_min = guards.iter().filter_map(|g| g.min_buffered_ts_for(name)).min();
                // Cumulative late rows at this close: summed inside the
                // same critical section as the merge, so the value equals
                // the unsharded engine's per-stream late counter at the
                // equivalent moment (the accuracy trajectory stays
                // shard-count invariant).
                let late_rows = guards.iter().map(|g| g.stream_counts(name).1).sum::<u64>();
                (merged, schema, global_min, late_rows)
            };
            let next = ws.saturating_add(width);
            meta.cursor = Some(match global_min {
                Some(min_ts) if min_ts >= next => align(min_ts, width),
                _ => next,
            });
            // Lag telemetry, same two observations the unsharded close
            // makes: watermark overrun in event time, first-buffered-row
            // to close in wall time.
            meta.event_lag.observe(through_ts.saturating_sub(next) as f64);
            if let Some(t0) = meta.opened_at.take() {
                meta.ingest_to_close.observe_duration(t0.elapsed());
            }
            if global_min.is_some() {
                // Buffered rows (the closing one, at least) started
                // accumulating the next window just now.
                meta.opened_at = ausdb_obs::now_if_enabled();
            }
            if !merged.is_empty() {
                emitted += 1;
                meta.windows.inc();
                let schema = schema.expect("a non-empty merged window has a learner");
                lock(&self.core).register_closed_window(name, schema, merged, ws, late_rows);
            }
        }
        Ok(emitted)
    }

    /// Runs a one-shot statement against the merged session.
    pub fn query(&self, sql: &str) -> Result<QueryReply, String> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).query(sql);
        }
        lock(&self.core).query(sql)
    }

    /// Registers a standing query.
    pub fn subscribe(&self, sql: &str) -> Result<(u64, String, Arc<SubscriberQueue>), String> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).subscribe(sql);
        }
        lock(&self.core).subscribe(sql)
    }

    /// Cancels a subscription; returns whether it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        if self.nshards == 1 {
            return lock(&self.shards[0]).unsubscribe(id);
        }
        lock(&self.core).unsubscribe(id)
    }

    /// Number of active subscriptions.
    pub fn subscriber_count(&self) -> usize {
        if self.nshards == 1 {
            return lock(&self.shards[0]).subscriber_count();
        }
        lock(&self.core).subscriber_count()
    }

    /// Registers (or replaces) an accuracy SLO on standing query `id`.
    pub fn set_slo(&self, id: u64, width: f64) -> Result<(), String> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).set_slo(id, width);
        }
        lock(&self.core).set_slo(id, width)
    }

    /// The `SLO LIST` payload.
    pub fn slo_lines(&self) -> Vec<String> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).slo_lines();
        }
        lock(&self.core).slo_lines()
    }

    /// `(registered targets, total violations)` across every accuracy SLO.
    pub fn slo_summary(&self) -> (usize, u64) {
        if self.nshards == 1 {
            return lock(&self.shards[0]).slo_summary();
        }
        lock(&self.core).slo_summary()
    }

    /// The retention store accuracy points land in — the core's store
    /// when sharded (subscriptions and closes live there), shard 0's in
    /// the classic layout. The server's sampler feeds metric scrapes
    /// into the same store.
    pub fn history(&self) -> Arc<SeriesStore> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).history();
        }
        lock(&self.core).history()
    }

    /// The highest total subscriber queue depth observed since start.
    pub fn backlog_highwater(&self) -> u64 {
        if self.nshards == 1 {
            return lock(&self.shards[0]).backlog_highwater();
        }
        lock(&self.core).backlog_highwater()
    }

    /// Per-stream health snapshots (watermark, ingest age, buffered
    /// rows) for the `HEALTH` verb, in stream-name order.
    pub(crate) fn stream_health(&self) -> Vec<StreamHealth> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).stream_health();
        }
        self.meta_list()
            .into_iter()
            .map(|(name, meta_arc)| {
                let (watermark, age_us) = {
                    let meta = lock(&meta_arc);
                    (meta.max_ts, meta.last_ingest.map(|t| t.elapsed().as_micros() as u64))
                };
                let buffered =
                    self.shards.iter().map(|s| lock(s).buffered_len_for(&name)).sum::<usize>();
                StreamHealth { name, watermark, age_us, buffered }
            })
            .collect()
    }

    /// Current counters, merged across shards.
    pub fn counters(&self) -> Counters {
        if self.nshards == 1 {
            return lock(&self.shards[0]).counters();
        }
        let metas = self.meta_list();
        let mut c = Counters::default();
        for (name, meta_arc) in &metas {
            c.windows_emitted += lock(meta_arc).windows.get();
            let _ = name;
        }
        for shard in &self.shards {
            let g = lock(shard);
            let shard_counts = g.counters();
            c.rows_ingested += shard_counts.rows_ingested;
            c.late_rows += shard_counts.late_rows;
        }
        let core = lock(&self.core).counters();
        c.queries_run = core.queries_run;
        c.events_emitted = core.events_emitted;
        c
    }

    /// `STATS` payload, identical line formats to the unsharded engine.
    pub fn stats_lines(&self) -> Vec<String> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).stats_lines();
        }
        let metas = self.meta_list();
        let cursors: Vec<(String, Option<u64>, u64)> = metas
            .iter()
            .map(|(name, meta_arc)| {
                let meta = lock(meta_arc);
                (name.clone(), meta.cursor, meta.windows.get())
            })
            .collect();
        let guards: Vec<MutexGuard<'_, EngineState>> = self.shards.iter().map(lock).collect();
        let core = lock(&self.core);
        let core_counts = core.counters();
        let mut rows_total = 0u64;
        let mut late_total = 0u64;
        let mut windows_total = 0u64;
        let mut stream_lines = Vec::new();
        for (name, cursor, windows) in &cursors {
            let mut buffered = 0usize;
            let mut rows = 0u64;
            let mut late = 0u64;
            for g in &guards {
                buffered += g.buffered_len_for(name);
                let (r, l) = g.stream_counts(name);
                rows += r;
                late += l;
            }
            rows_total += rows;
            late_total += late;
            windows_total += windows;
            let registered = core.session().stream(name).map(|(_, t)| t.len()).unwrap_or(0);
            stream_lines.push(format!(
                "stream {name} buffered={buffered} window_start={} \
                 registered_rows={registered} rows={rows} late_rows={late}",
                cursor.map_or_else(|| "-".to_string(), |ws| ws.to_string()),
            ));
        }
        let mut out = vec![format!(
            "server rows_ingested={rows_total} late_rows={late_total} \
             windows_emitted={windows_total} queries={} events={} subscribers={} streams={}",
            core_counts.queries_run,
            core_counts.events_emitted,
            core.subscriber_count(),
            cursors.len()
        )];
        out.extend(stream_lines);
        out.extend(core.subscriber_and_query_stat_lines());
        out
    }

    /// The Prometheus exposition, merged (summed) across every shard
    /// registry, the core registry, and the process-wide engine registry.
    pub fn metrics_text(&self) -> String {
        self.metrics_text_with(&[])
    }

    /// Like [`ShardSet::metrics_text`], with extra registries merged in —
    /// WAL and replication telemetry live outside the engine states.
    pub fn metrics_text_with(&self, extra: &[&Registry]) -> String {
        if self.nshards == 1 {
            let g = lock(&self.shards[0]);
            g.sample_queue_depth();
            let mut regs: Vec<&Registry> =
                vec![g.registry(), ausdb_engine::obs::telemetry::global().registry()];
            regs.extend_from_slice(extra);
            return ausdb_obs::metrics::render_merged(&regs);
        }
        let guards: Vec<MutexGuard<'_, EngineState>> = self.shards.iter().map(lock).collect();
        let core = lock(&self.core);
        core.sample_queue_depth();
        let mut regs: Vec<&Registry> = guards.iter().map(|g| g.registry()).collect();
        regs.push(core.registry());
        regs.push(ausdb_engine::obs::telemetry::global().registry());
        regs.extend_from_slice(extra);
        ausdb_obs::metrics::render_merged(&regs)
    }

    /// One structured metric scrape for the retention sampler — the same
    /// registries, merge semantics, and ordering as
    /// [`ShardSet::metrics_text_with`], as typed samples instead of
    /// exposition text.
    pub fn collect_samples(&self, extra: &[&Registry]) -> Vec<Sample> {
        if self.nshards == 1 {
            let g = lock(&self.shards[0]);
            g.sample_queue_depth();
            let mut regs: Vec<&Registry> =
                vec![g.registry(), ausdb_engine::obs::telemetry::global().registry()];
            regs.extend_from_slice(extra);
            return ausdb_obs::metrics::collect_merged(&regs);
        }
        let guards: Vec<MutexGuard<'_, EngineState>> = self.shards.iter().map(lock).collect();
        let core = lock(&self.core);
        core.sample_queue_depth();
        let mut regs: Vec<&Registry> = guards.iter().map(|g| g.registry()).collect();
        regs.push(core.registry());
        regs.push(ausdb_engine::obs::telemetry::global().registry());
        regs.extend_from_slice(extra);
        ausdb_obs::metrics::collect_merged(&regs)
    }

    // -- snapshot / restore ------------------------------------------------

    /// Captures a **canonical** snapshot: per-shard learner buffers are
    /// merged back into one learner per stream before encoding, so the
    /// bytes are identical to the unsharded engine's snapshot of the same
    /// rows — a snapshot taken at 8 shards restores at 1 (or 2, or 13)
    /// exactly.
    pub fn to_snapshot(&self) -> ServerSnapshot {
        if self.nshards == 1 {
            return lock(&self.shards[0]).to_snapshot();
        }
        let metas = self.meta_list();
        let cursors: Vec<(String, Option<u64>)> =
            metas.iter().map(|(name, meta_arc)| (name.clone(), lock(meta_arc).cursor)).collect();
        self.snapshot_from_cursors(cursors, 0)
    }

    /// Captures a snapshot plus the WAL watermark as one **consistent
    /// cut**: the stream map (which every ingest consults first) and all
    /// coordinator locks are held while the watermark is read and shard
    /// state captured, so the snapshot contains exactly the effects of
    /// WAL records `≤ wal_seq` — replaying strictly-later records on top
    /// of it reproduces the live state bit for bit. Falls back to
    /// [`ShardSet::to_snapshot`] (watermark 0) when no WAL is attached.
    pub fn snapshot_with_wal_seq(&self) -> ServerSnapshot {
        let Some(wal) = self.wal.get() else { return self.to_snapshot() };
        if self.nshards == 1 {
            let g = lock(&self.shards[0]);
            let wal_seq = lock(wal).last_seq();
            let mut snap = g.to_snapshot();
            snap.wal_seq = wal_seq;
            return snap;
        }
        let map = lock(&self.streams);
        let metas: Vec<(String, Arc<Mutex<StreamMeta>>)> =
            map.iter().map(|(n, m)| (n.clone(), Arc::clone(m))).collect();
        let meta_guards: Vec<MutexGuard<'_, StreamMeta>> =
            metas.iter().map(|(_, m)| lock(m)).collect();
        let wal_seq = lock(wal).last_seq();
        let cursors: Vec<(String, Option<u64>)> =
            metas.iter().zip(&meta_guards).map(|((name, _), g)| (name.clone(), g.cursor)).collect();
        self.snapshot_from_cursors(cursors, wal_seq)
    }

    /// Shared merge body for the snapshot paths: locks every shard plus
    /// the core and merges per-shard buffers back into one canonical
    /// learner per stream.
    fn snapshot_from_cursors(
        &self,
        cursors: Vec<(String, Option<u64>)>,
        wal_seq: u64,
    ) -> ServerSnapshot {
        let guards: Vec<MutexGuard<'_, EngineState>> = self.shards.iter().map(lock).collect();
        let core = lock(&self.core);
        let streams = cursors
            .into_iter()
            .map(|(name, window_start)| {
                let donor = guards
                    .iter()
                    .find_map(|g| g.learner_for(&name))
                    .expect("a coordinated stream exists on at least one shard");
                let config = *donor.config();
                let schema = donor.schema().clone();
                let mut buffer: BTreeMap<i64, Vec<(u64, f64)>> = BTreeMap::new();
                for g in &guards {
                    if let Some(l) = g.learner_for(&name) {
                        for (&k, v) in l.buffer() {
                            buffer.insert(k, v.clone());
                        }
                    }
                }
                let merged = StreamLearner::from_parts(config, schema, buffer);
                StreamSnapshot {
                    learner: encode_learner(&merged),
                    window_start,
                    registered: core
                        .session()
                        .stream(&name)
                        .map(|(schema, tuples)| (schema.clone(), tuples.to_vec())),
                    name,
                }
            })
            .collect();
        ServerSnapshot { streams, wal_seq }
    }

    /// Replaces all stream state with the snapshot's, re-partitioning
    /// each learner's buffer by key hash. Restores a snapshot taken at
    /// any shard count.
    pub fn restore(&self, snapshot: ServerSnapshot) -> Result<usize, String> {
        if self.nshards == 1 {
            return lock(&self.shards[0]).restore(snapshot);
        }
        // Decode everything first so a corrupt snapshot mutates nothing.
        let mut decoded = Vec::with_capacity(snapshot.streams.len());
        for s in snapshot.streams {
            let learner = decode_learner(&s.learner).map_err(|e| e.to_string())?;
            decoded.push((s.name, learner, s.window_start, s.registered));
        }
        let mut map = lock(&self.streams);
        let mut guards: Vec<MutexGuard<'_, EngineState>> = self.shards.iter().map(lock).collect();
        let mut core = lock(&self.core);
        for g in guards.iter_mut() {
            g.clear_streams();
        }
        core.clear_streams();
        core.reset_session();
        let mut new_map = BTreeMap::new();
        for (name, learner, window_start, registered) in decoded {
            let config = *learner.config();
            let schema = learner.schema().clone();
            let mut parts: Vec<BTreeMap<i64, Vec<(u64, f64)>>> =
                vec![BTreeMap::new(); self.nshards];
            for (&k, v) in learner.buffer() {
                parts[shard_of(k, self.nshards)].insert(k, v.clone());
            }
            for (g, part) in guards.iter_mut().zip(parts) {
                g.install_stream(&name, StreamLearner::from_parts(config, schema.clone(), part));
            }
            if let Some((schema, tuples)) = registered {
                core.register_stream_content(&name, schema, tuples);
            }
            // Metric handles are re-fetched by name: a stream that existed
            // before the restore keeps its series in the core registry.
            let meta = StreamMeta::new(window_start, &core, &name);
            new_map.insert(name, Arc::new(Mutex::new(meta)));
        }
        let n = new_map.len();
        *map = new_map;
        Ok(n)
    }

    /// Snapshot of the coordinator map: `(name, meta)` pairs in name order.
    fn meta_list(&self) -> Vec<(String, Arc<Mutex<StreamMeta>>)> {
        lock(&self.streams).iter().map(|(n, m)| (n.clone(), Arc::clone(m))).collect()
    }
}

/// The grouping key a learner emitted a tuple for (field 0 is always the
/// key column).
fn tuple_key(t: &Tuple) -> i64 {
    match t.fields[0].value {
        Value::Int(k) => k,
        _ => i64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ausdb_learn::accuracy::DistKind;
    use ausdb_learn::learner::LearnerConfig;
    use ausdb_model::codec::{Codec, Writer};

    fn config(shards: usize) -> EngineConfig {
        EngineConfig {
            learner: LearnerConfig {
                kind: DistKind::Empirical,
                level: 0.9,
                window_width: 10,
                min_observations: 2,
            },
            max_subscribers: 4,
            queue_cap: 64,
            shards,
        }
    }

    fn snapshot_bytes(snap: &ServerSnapshot) -> Vec<u8> {
        let mut w = Writer::new();
        snap.encode(&mut w);
        w.into_bytes()
    }

    /// A row mix that exercises multiple keys, a late row, and a time jump.
    fn rows() -> Vec<String> {
        let mut rows = Vec::new();
        for i in 0..40u64 {
            let key = (i % 7) as i64;
            let ts = 100 + i;
            rows.push(format!("{key},{ts},{}", 40.0 + (i % 11) as f64 * 0.5));
        }
        rows.push("3,95,1.5".to_string()); // late: before the open window
        rows.push("5,500,9.0".to_string()); // jump: closes + skips empties
        for i in 0..10u64 {
            rows.push(format!("{},{},{}", (i % 3) as i64, 500 + i, 60.0 + i as f64));
        }
        rows
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in [1usize, 2, 8, 13] {
            for key in [-5i64, 0, 1, 19, i64::MIN, i64::MAX] {
                let s = shard_of(key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(key, n), "stable");
            }
        }
        // Keys actually spread across shards (not all on one).
        let hits: std::collections::BTreeSet<usize> = (0..100i64).map(|k| shard_of(k, 8)).collect();
        assert!(hits.len() > 4, "100 keys land on >4 of 8 shards: {hits:?}");
    }

    #[test]
    fn sharded_matches_unsharded_bit_for_bit() {
        let mut reference = EngineState::new(config(1));
        for row in rows() {
            reference.ingest("traffic", &row).unwrap();
        }
        let ref_snap = reference.to_snapshot();
        for n in [2usize, 3, 8] {
            let set = ShardSet::new(config(n));
            let mut emitted = 0;
            for row in rows() {
                emitted += set.ingest("traffic", &row).unwrap().windows_emitted;
            }
            assert_eq!(emitted, reference.counters().windows_emitted, "shards={n}");
            let c = set.counters();
            let r = reference.counters();
            assert_eq!(
                (c.rows_ingested, c.late_rows, c.windows_emitted),
                (r.rows_ingested, r.late_rows, r.windows_emitted),
                "shards={n}"
            );
            assert_eq!(
                snapshot_bytes(&set.to_snapshot()),
                snapshot_bytes(&ref_snap),
                "snapshot bytes differ at shards={n}"
            );
        }
    }

    #[test]
    fn batch_matches_line_ingest_across_shards() {
        let parsed: Vec<RawObservation> = rows()
            .iter()
            .map(|r| {
                let cells: Vec<&str> = r.split(',').collect();
                RawObservation::new(
                    cells[0].parse().unwrap(),
                    cells[1].parse().unwrap(),
                    cells[2].parse().unwrap(),
                )
            })
            .collect();
        let line = ShardSet::new(config(4));
        for row in rows() {
            line.ingest("traffic", &row).unwrap();
        }
        let batch = ShardSet::new(config(4));
        let out = batch.ingest_batch("traffic", &parsed).unwrap();
        assert_eq!(out.accepted, parsed.len() as u64);
        let c = line.counters();
        assert_eq!((out.late, out.windows_emitted), (c.late_rows, c.windows_emitted));
        assert_eq!(snapshot_bytes(&batch.to_snapshot()), snapshot_bytes(&line.to_snapshot()));
        assert_eq!(batch.stats_lines(), line.stats_lines());
    }

    #[test]
    fn restore_across_shard_counts_is_exact() {
        let eight = ShardSet::new(config(8));
        for row in rows() {
            eight.ingest("traffic", &row).unwrap();
        }
        let snap = eight.to_snapshot();
        let bytes = snapshot_bytes(&snap);
        for n in [1usize, 2, 5] {
            let other = ShardSet::new(config(n));
            other.restore(snap.clone()).unwrap();
            assert_eq!(snapshot_bytes(&other.to_snapshot()), bytes, "restore at shards={n}");
            // Subsequent ingest diverges nowhere: feed one more closing row.
            other.ingest("traffic", "1,9999,5.0").unwrap();
            eight_like(&other);
        }
        fn eight_like(set: &ShardSet) {
            // The merged query view stays well-formed after restore+ingest.
            let QueryReply::Rows(_, tuples) = set.query("SELECT * FROM traffic").unwrap() else {
                panic!("SELECT returns rows");
            };
            assert!(!tuples.is_empty());
        }
    }

    #[test]
    fn slo_and_health_are_shard_count_invariant() {
        ausdb_obs::set_enabled(true);
        let mut queues = Vec::new();
        let sets: Vec<ShardSet> = [1usize, 4]
            .into_iter()
            .map(|n| {
                let set = ShardSet::new(config(n));
                let (id, _, queue) = set.subscribe("SELECT * FROM traffic").unwrap();
                set.set_slo(id, 1e-9).unwrap();
                assert!(set.set_slo(id + 1, 0.5).is_err(), "unknown id rejected sharded too");
                for row in rows() {
                    set.ingest("traffic", &row).unwrap();
                }
                queues.push(queue);
                set
            })
            .collect();
        // The watchdog fires identically at any shard count: same
        // subscriber byte stream (EVENT blocks + ACCURACY notices), same
        // SLO LIST lines, same snapshot bytes.
        let drained: Vec<Vec<String>> = queues.iter().map(|q| q.drain()).collect();
        assert_eq!(drained[0], drained[1], "subscriber streams diverge across shard counts");
        assert!(drained[0].iter().any(|l| l.starts_with("ACCURACY ")), "{:?}", drained[0]);
        assert_eq!(sets[0].slo_lines(), sets[1].slo_lines());
        assert!(sets[0].slo_lines()[0].contains("violations="), "{:?}", sets[0].slo_lines());
        assert_eq!(snapshot_bytes(&sets[0].to_snapshot()), snapshot_bytes(&sets[1].to_snapshot()));
        // Health: watermark and buffered counts agree (ages are wall
        // clocks, so only their presence is comparable).
        let healths: Vec<Vec<StreamHealth>> = sets.iter().map(|s| s.stream_health()).collect();
        for h in &healths {
            assert_eq!(h.len(), 1);
            assert_eq!(h[0].name, "traffic");
            assert!(h[0].age_us.is_some());
        }
        assert_eq!(healths[0][0].watermark, healths[1][0].watermark);
        assert_eq!(healths[0][0].buffered, healths[1][0].buffered);
        // The violation counter renders per query id in both layouts.
        for set in &sets {
            let text = set.metrics_text();
            assert!(text.contains("ausdb_accuracy_slo_violations_total{query=\"1\"}"), "{text}");
            assert!(
                text.contains("ausdb_event_time_lag_seconds_count{stream=\"traffic\"}"),
                "{text}"
            );
        }
    }

    #[test]
    fn query_and_subscribe_work_sharded() {
        let set = ShardSet::new(config(4));
        let (id, stream, queue) = set.subscribe("SELECT * FROM traffic").unwrap();
        assert_eq!(stream, "traffic");
        for row in rows() {
            set.ingest("traffic", &row).unwrap();
        }
        assert!(!queue.drain().is_empty(), "subscriber saw window closes");
        assert!(set.unsubscribe(id));
        let QueryReply::Rows(schema, tuples) = set.query("SELECT * FROM traffic").unwrap() else {
            panic!("SELECT returns rows");
        };
        assert_eq!(schema.columns().len(), 2);
        assert!(!tuples.is_empty());
        let text = set.metrics_text();
        assert!(text.contains("ausdb_rows_ingested_total{stream=\"traffic\"}"), "{text}");
        assert!(text.contains("ausdb_queries_total 1"), "{text}");
    }
}
