//! Minimal Ctrl-C (SIGINT) hook — no signal-handling crate available, so
//! a single libc `signal(2)` registration flips an [`AtomicBool`] the
//! serve loop polls. The handler body is async-signal-safe (one relaxed
//! atomic store, nothing else).

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT has been received since [`install_sigint_handler`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Installs the SIGINT handler. Safe to call more than once; a no-op on
/// non-Unix targets (where `interrupted()` simply stays false and the
/// server is stopped via the `SHUTDOWN` command instead).
pub fn install_sigint_handler() {
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{AtomicBool, Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    unsafe extern "C" {
        // POSIX `signal(2)`; the return value (previous disposition) is
        // deliberately ignored, so it is declared opaque.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: registering an async-signal-safe handler (a single
        // atomic store) for SIGINT; `signal` is callable from any thread.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_without_firing() {
        install_sigint_handler();
        install_sigint_handler(); // idempotent
        assert!(!interrupted());
    }
}
