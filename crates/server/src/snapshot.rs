//! Snapshot persistence: atomic write / read of [`ServerSnapshot`] files.

use std::io;
use std::path::Path;

use ausdb_model::codec::{decode_snapshot, encode_snapshot};

use crate::state::ServerSnapshot;

/// Writes `snapshot` to `path` atomically (temp file + rename), returning
/// the encoded size in bytes.
pub fn write_snapshot(path: &Path, snapshot: &ServerSnapshot) -> io::Result<usize> {
    let bytes = encode_snapshot(snapshot);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len())
}

/// Reads a snapshot from `path`. Decode failures surface as
/// `InvalidData` I/O errors so callers can distinguish "no snapshot"
/// (`NotFound`) from "corrupt snapshot".
pub fn read_snapshot(path: &Path) -> io::Result<ServerSnapshot> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EngineConfig, EngineState};

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ausdb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");

        let mut state = EngineState::new(EngineConfig::default());
        state.ingest("traffic", "19,100,56").unwrap();
        state.ingest("traffic", "19,101,38").unwrap();
        let snap = state.to_snapshot();
        let n = write_snapshot(&path, &snap).unwrap();
        assert!(n > 6, "wrote {n} bytes");
        assert_eq!(read_snapshot(&path).unwrap(), snap);

        // Corrupt file → InvalidData, not a panic.
        std::fs::write(&path, b"AUSBgarbage").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Missing file → NotFound.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(read_snapshot(&path).unwrap_err().kind(), std::io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).ok();
    }
}
