//! Snapshot persistence: atomic, fsync-safe write / read of
//! [`ServerSnapshot`] files.

use std::io::{self, Write};
use std::path::Path;

use ausdb_model::codec::{decode_snapshot, encode_snapshot};

use crate::state::ServerSnapshot;

/// Writes `snapshot` to `path` atomically and durably: the bytes go to a
/// uniquely named temp file (`<name>.tmp.<pid>`, so two processes
/// snapshotting the same path never clobber each other's temp), the temp
/// is fsynced **before** the rename (otherwise a crash can leave the
/// final name pointing at zero-length or partial data — rename orders
/// metadata, not file contents), and the parent directory is fsynced
/// after so the rename itself survives a power cut. Returns the encoded
/// size in bytes.
pub fn write_snapshot(path: &Path, snapshot: &ServerSnapshot) -> io::Result<usize> {
    let bytes = encode_snapshot(snapshot);
    let tmp = temp_path(path, std::process::id());
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) =
            std::fs::File::open(if parent.as_os_str().is_empty() { Path::new(".") } else { parent })
        {
            // Directory fsync is best-effort: some filesystems reject it.
            let _ = dir.sync_all();
        }
    }
    Ok(bytes.len())
}

/// The temp-file sibling `write_snapshot` stages into.
fn temp_path(path: &Path, pid: u32) -> std::path::PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!("{name}.tmp.{pid}"))
}

/// Removes stale snapshot temp files left by a crashed writer: any
/// `<name>.tmp.<pid>` sibling of `path`, plus the legacy `<stem>.tmp`
/// name older versions staged into. Returns how many were removed.
/// Call on startup, before the first snapshot is read or written.
pub fn clean_stale_temps(path: &Path) -> usize {
    let mut removed = 0;
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let prefix = format!("{name}.tmp.");
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    if let Ok(entries) = std::fs::read_dir(&parent) {
        for entry in entries.flatten() {
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname.starts_with(&prefix) && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
    }
    let legacy = path.with_extension("tmp");
    if legacy != *path && std::fs::remove_file(&legacy).is_ok() {
        removed += 1;
    }
    removed
}

/// Reads a snapshot from `path`. Decode failures surface as
/// `InvalidData` I/O errors so callers can distinguish "no snapshot"
/// (`NotFound`) from "corrupt snapshot".
pub fn read_snapshot(path: &Path) -> io::Result<ServerSnapshot> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EngineConfig, EngineState};

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ausdb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");

        let mut state = EngineState::new(EngineConfig::default());
        state.ingest("traffic", "19,100,56").unwrap();
        state.ingest("traffic", "19,101,38").unwrap();
        let snap = state.to_snapshot();
        let n = write_snapshot(&path, &snap).unwrap();
        assert!(n > 6, "wrote {n} bytes");
        assert_eq!(read_snapshot(&path).unwrap(), snap);

        // Corrupt file → InvalidData, not a panic.
        std::fs::write(&path, b"AUSBgarbage").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Missing file → NotFound.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(read_snapshot(&path).unwrap_err().kind(), std::io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temps_are_cleaned_but_the_snapshot_survives() {
        let dir = std::env::temp_dir().join("ausdb_snapshot_tmp_clean_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");

        let state = EngineState::new(EngineConfig::default());
        write_snapshot(&path, &state.to_snapshot()).unwrap();
        // Simulate crashed writers: our pid, a foreign pid, the legacy name.
        std::fs::write(temp_path(&path, std::process::id()), b"partial").unwrap();
        std::fs::write(temp_path(&path, 99999), b"partial").unwrap();
        std::fs::write(path.with_extension("tmp"), b"partial").unwrap();

        assert_eq!(clean_stale_temps(&path), 3);
        assert!(path.exists(), "the real snapshot must survive cleanup");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1, "only the snapshot remains");
        // Idempotent when there is nothing to do.
        assert_eq!(clean_stale_temps(&path), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
