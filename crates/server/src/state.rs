//! The server's shared engine state: per-stream learners, the query
//! session, subscriptions, and snapshot/restore.
//!
//! This is the glue the paper's Figure 1 implies but the one-shot CLI
//! never needed: raw rows stream in per connection, per-key learners
//! buffer them, and each **closed window** turns into a registered
//! probabilistic relation that one-shot `QUERY`s and standing
//! `SUBSCRIBE`s evaluate against — with the learned distributions
//! carrying their accuracy information end to end.
//!
//! ## Window semantics
//!
//! Windows are aligned: observation `ts` belongs to the window starting at
//! `ts - ts % width`. A window *closes* when an observation at or past its
//! end arrives on the same stream; closing learns one probabilistic tuple
//! per key (`emit_window`), registers the result as the stream's current
//! content, and fans events out to subscribers. Ingest that jumps far
//! ahead in time skips empty windows via
//! [`StreamLearner::min_buffered_ts`] instead of closing them one by one.
//! Observations older than the current window are dropped at the next
//! close (counted as `late_rows` in `STATS`).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ausdb_engine::obs::StatsReport;
use ausdb_engine::query::Session;
use ausdb_learn::ingest::parse_timestamp;
use ausdb_learn::learner::{LearnerConfig, RawObservation, StreamLearner};
use ausdb_model::codec::{Codec, CodecError, Reader, Writer};
use ausdb_model::schema::Schema;
use ausdb_model::tuple::Tuple;
use ausdb_obs::hist::log_linear_bounds;
use ausdb_obs::{journal, AccuracyPoint, Counter, Gauge, Histogram, Level, Registry, SeriesStore};
use ausdb_sql::parser::parse;
use ausdb_sql::planner::{run_sql, run_statement_with_stats, SqlOutput};

use crate::render::render_rows;
use crate::subscriber::SubscriberQueue;

/// Engine-level configuration (the server's `ServerConfig` carries this
/// plus the transport settings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Learner settings applied to every new stream.
    pub learner: LearnerConfig,
    /// Maximum concurrent subscriptions across all connections.
    pub max_subscribers: usize,
    /// Per-subscriber queue capacity in protocol lines.
    pub queue_cap: usize,
    /// Key-sharded engine states in the server (`AUSDB_SHARDS` /
    /// `--shards`; 1 = the classic single-engine layout). Read by
    /// [`crate::shard::ShardSet`]; a standalone [`EngineState`] ignores it.
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            learner: LearnerConfig::gaussian(60),
            max_subscribers: 64,
            queue_cap: 256,
            shards: ausdb_obs::knobs::shards(),
        }
    }
}

/// One stream's learner plus its window cursor.
#[derive(Debug)]
struct StreamState {
    learner: StreamLearner,
    /// Start of the currently open window; `None` until the first row.
    window_start: Option<u64>,
    /// Event-time watermark: the largest timestamp seen on the stream.
    /// Observational only (never in snapshots or query results).
    max_ts: Option<u64>,
    /// Wall-clock of the last ingest call that touched the stream
    /// (telemetry-gated; powers the `HEALTH` watermark age).
    last_ingest: Option<Instant>,
    /// Wall-clock when the currently open window started accumulating
    /// rows (telemetry-gated; observed into `ingest_to_close` at close).
    opened_at: Option<Instant>,
    /// Cached metric handles for this stream's labeled counters.
    counters: StreamCounters,
}

/// Per-stream counter handles (labeled `{stream="<name>"}`), cached at
/// stream creation so the ingest hot path is one atomic increment and
/// never a registry lock.
#[derive(Debug, Clone)]
struct StreamCounters {
    rows: Arc<Counter>,
    late: Arc<Counter>,
    windows: Arc<Counter>,
    /// Event-time distance the watermark ran past each closed window's
    /// end (how out-of-order / bursty the stream's clock is).
    event_lag: Arc<Histogram>,
    /// Wall-clock from the open window's first buffered row to its close.
    ingest_to_close: Arc<Histogram>,
}

/// This engine instance's metric registry plus cached handles. Every
/// [`EngineState`] owns its own registry, so embedded instances and tests
/// stay isolated; [`EngineState::metrics_text`] merges it with the
/// process-wide engine registry for the `METRICS` exposition.
#[derive(Debug)]
struct ServerTelemetry {
    registry: Registry,
    queries: Arc<Counter>,
    events: Arc<Counter>,
    query_latency: Arc<Histogram>,
    window_close: Arc<Histogram>,
    snapshot_encode: Arc<Histogram>,
    snapshot_decode: Arc<Histogram>,
    /// Streams that ever had a `ausdb_subscriber_queue_depth{stream=…}`
    /// series, so sampling can pin a now-subscriber-less stream back to
    /// 0 instead of leaving its last depth frozen in the exposition.
    queue_streams: Mutex<BTreeSet<String>>,
    /// Raw backlog high-water mark (gauges have no `fetch_max`).
    backlog_highwater_raw: AtomicU64,
    backlog_highwater: Arc<Gauge>,
}

/// Help text for the per-stream subscriber queue-depth gauge family.
const QUEUE_DEPTH_HELP: &str = "Protocol lines queued across the stream's subscriber queues";

impl ServerTelemetry {
    fn new() -> Self {
        let registry = Registry::new();
        // 1µs .. 90s covers a tick-resolution server comfortably.
        let latency = log_linear_bounds(-6, 1);
        Self {
            queries: registry.counter(
                "ausdb_queries_total",
                "One-shot QUERY statements executed",
                &[],
            ),
            events: registry.counter(
                "ausdb_subscriber_events_total",
                "Subscriber event blocks generated (before any queue drops)",
                &[],
            ),
            query_latency: registry.histogram(
                "ausdb_query_latency_seconds",
                "One-shot query latency",
                &latency,
                &[],
            ),
            window_close: registry.histogram(
                "ausdb_window_close_seconds",
                "Window-close latency (learn + register + fan-out)",
                &latency,
                &[],
            ),
            snapshot_encode: registry.histogram(
                "ausdb_snapshot_encode_seconds",
                "Snapshot capture (encode) time",
                &latency,
                &[],
            ),
            snapshot_decode: registry.histogram(
                "ausdb_snapshot_decode_seconds",
                "Snapshot restore (decode) time",
                &latency,
                &[],
            ),
            queue_streams: Mutex::new(BTreeSet::new()),
            backlog_highwater_raw: AtomicU64::new(0),
            backlog_highwater: registry.gauge(
                "ausdb_subscriber_backlog_highwater",
                "Highest total subscriber queue depth observed since start",
                &[],
            ),
            registry,
        }
    }

    /// Folds `total` queued lines into the backlog high-water mark.
    fn note_backlog(&self, total: u64) {
        let prev = self.backlog_highwater_raw.fetch_max(total, Ordering::Relaxed);
        self.backlog_highwater.set(prev.max(total) as f64);
    }

    /// Fetches (or creates) the SLO series for standing query `id`.
    fn slo(&self, id: u64) -> (Arc<Counter>, Arc<Gauge>) {
        let query = id.to_string();
        let labels = [("query", query.as_str())];
        (
            self.registry.counter(
                "ausdb_accuracy_slo_violations_total",
                "Window closes where a standing query's CI width exceeded its SLO target",
                &labels,
            ),
            self.registry.gauge(
                "ausdb_ci_width_over_target",
                "How far the last evaluated CI width sat above the SLO target (0 = compliant)",
                &labels,
            ),
        )
    }

    /// Fetches (or creates) the labeled counter handles for `name`. A
    /// stream re-created under the same name resumes its counts — the
    /// series, not the handle, owns the value.
    fn stream(&self, name: &str) -> StreamCounters {
        let labels = [("stream", name)];
        StreamCounters {
            rows: self.registry.counter(
                "ausdb_rows_ingested_total",
                "Raw rows accepted by INGEST",
                &labels,
            ),
            late: self.registry.counter(
                "ausdb_late_rows_total",
                "Rows whose timestamp predated the open window",
                &labels,
            ),
            windows: self.registry.counter(
                "ausdb_windows_emitted_total",
                "Windows closed with at least one learned tuple",
                &labels,
            ),
            // Event-time units: 1 .. 9·10⁵ covers in-order streams (lag
            // 0-1 windows) through day-scale replays.
            event_lag: self.registry.histogram(
                "ausdb_event_time_lag_seconds",
                "Event-time distance the watermark ran past each closed window's end",
                &log_linear_bounds(0, 5),
                &labels,
            ),
            // Wall-clock: 1µs .. 90s, same shape as the latency families.
            ingest_to_close: self.registry.histogram(
                "ausdb_ingest_to_close_seconds",
                "Wall-clock from a window's first buffered row to its close",
                &log_linear_bounds(-6, 1),
                &labels,
            ),
        }
    }
}

/// One standing query's accuracy SLO: the CI-width ceiling plus its
/// cached metric handles (fetched once at `SLO SET`, because evaluation
/// happens in `fire_events`, which holds only `&self`).
#[derive(Debug)]
struct SloTarget {
    /// Maximum acceptable CI width across the query's result tuples.
    width: f64,
    violations: Arc<Counter>,
    over: Arc<Gauge>,
}

/// One stream's health snapshot, rendered as a `STREAM` line by the
/// `HEALTH` protocol verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StreamHealth {
    /// Stream name (lowercased).
    pub(crate) name: String,
    /// Event-time watermark (largest timestamp seen), if any row arrived.
    pub(crate) watermark: Option<u64>,
    /// Microseconds since the last ingest touched the stream; `None`
    /// with telemetry off (no wall clocks are read).
    pub(crate) age_us: Option<u64>,
    /// Observations buffered in the open window.
    pub(crate) buffered: usize,
}

/// A standing query owned by some connection.
#[derive(Debug)]
pub struct Subscription {
    /// The FROM stream (lowercased) whose window closes trigger this query.
    pub stream: String,
    /// The SQL text, re-evaluated per closed window.
    pub sql: String,
    /// The subscriber's bounded event queue.
    pub queue: Arc<SubscriberQueue>,
}

/// A point-in-time summary of the server's monotonic counters, surfaced
/// by `STATS`. Computed from the metric registry's counter series (the
/// registry is the single source of truth; this struct is the stable
/// programmatic view of it).
#[derive(Debug, Default, Clone, Copy)]
pub struct Counters {
    /// Raw rows accepted by `INGEST`.
    pub rows_ingested: u64,
    /// Rows whose timestamp predated the open window (dropped at close).
    pub late_rows: u64,
    /// Windows closed with at least one learned tuple.
    pub windows_emitted: u64,
    /// One-shot `QUERY` statements executed.
    pub queries_run: u64,
    /// Subscriber event blocks generated (before any queue drops).
    pub events_emitted: u64,
}

/// What one `QUERY` statement produced: rows for a SELECT, rendered plan
/// lines for `EXPLAIN` / `EXPLAIN ANALYZE`.
#[derive(Debug, Clone)]
pub enum QueryReply {
    /// SELECT results.
    Rows(Schema, Vec<Tuple>),
    /// Plan text, one operator per line.
    Plan(Vec<String>),
}

/// What one `INGEST` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Windows that closed with learned tuples as a result of this row.
    pub windows_emitted: u64,
}

/// What one `INGESTB` batch frame did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Rows accepted from the frame.
    pub accepted: u64,
    /// Rows whose timestamp predated the then-open window.
    pub late: u64,
    /// Windows that closed with learned tuples while applying the frame.
    pub windows_emitted: u64,
}

/// The engine state shared by all connection threads (behind one mutex).
pub struct EngineState {
    config: EngineConfig,
    session: Session,
    streams: BTreeMap<String, StreamState>,
    subscriptions: BTreeMap<u64, Subscription>,
    next_subscription_id: u64,
    slo_targets: BTreeMap<u64, SloTarget>,
    telemetry: ServerTelemetry,
    last_stats: Option<StatsReport>,
    /// The accuracy-trajectory / metric retention store. Strictly
    /// observational: written on window closes (accuracy points) and by
    /// the server's sampler thread (metric buckets), never read on the
    /// query path.
    history: Arc<SeriesStore>,
}

impl EngineState {
    /// Creates an empty state.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            session: Session::new(),
            streams: BTreeMap::new(),
            subscriptions: BTreeMap::new(),
            next_subscription_id: 1,
            slo_targets: BTreeMap::new(),
            telemetry: ServerTelemetry::new(),
            last_stats: None,
            history: Arc::new(SeriesStore::with_default_tiers()),
        }
    }

    /// The retention store behind `HISTORY` / `GET /history`.
    pub fn history(&self) -> Arc<SeriesStore> {
        Arc::clone(&self.history)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current counters, summed across streams from the metric registry.
    pub fn counters(&self) -> Counters {
        let mut c = Counters {
            queries_run: self.telemetry.queries.get(),
            events_emitted: self.telemetry.events.get(),
            ..Counters::default()
        };
        for st in self.streams.values() {
            c.rows_ingested += st.counters.rows.get();
            c.late_rows += st.counters.late.get();
            c.windows_emitted += st.counters.windows.get();
        }
        c
    }

    /// The Prometheus text exposition: this instance's registry (with the
    /// subscriber queue-depth gauge freshly sampled) merged with the
    /// process-wide engine accuracy registry.
    pub fn metrics_text(&self) -> String {
        self.sample_queue_depth();
        ausdb_obs::metrics::render_merged(&[
            &self.telemetry.registry,
            ausdb_engine::obs::telemetry::global().registry(),
        ])
    }

    /// The query session (registered streams = last closed windows).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Ingests one `key,ts,value` row into `stream`, closing windows and
    /// fanning out subscriber events as needed.
    pub fn ingest(&mut self, stream: &str, row: &str) -> Result<IngestOutcome, String> {
        let obs = parse_observation(row)?;
        let name = normalize_stream_name(stream)?;
        let (_, windows_emitted) = self.ingest_observation(&name, obs)?;
        self.note_ingest(&name);
        Ok(IngestOutcome { windows_emitted })
    }

    /// Ingests a pre-parsed batch of observations into `stream` as if each
    /// arrived as its own `INGEST` line, in order. The whole batch is
    /// validated first (any non-finite value rejects the entire frame, so
    /// a partially applied batch is impossible to observe at the protocol
    /// level), then applied row by row — serially identical to the line
    /// path by construction.
    pub fn ingest_batch(
        &mut self,
        stream: &str,
        rows: &[RawObservation],
    ) -> Result<BatchOutcome, String> {
        let name = normalize_stream_name(stream)?;
        for (i, r) in rows.iter().enumerate() {
            if !r.value.is_finite() {
                return Err(format!("row {i}: non-finite value {}", r.value));
            }
        }
        let mut out = BatchOutcome::default();
        for &obs in rows {
            let (late, emitted) = self.ingest_observation(&name, obs)?;
            out.accepted += 1;
            out.late += u64::from(late);
            out.windows_emitted += emitted;
        }
        if !rows.is_empty() {
            self.note_ingest(&name);
        }
        Ok(out)
    }

    /// Ingests one parsed observation into the (already normalized)
    /// stream `name`: buffers it, bumps counters, and closes every window
    /// its timestamp has moved past. Returns `(was_late, windows_emitted)`.
    pub(crate) fn ingest_observation(
        &mut self,
        name: &str,
        obs: RawObservation,
    ) -> Result<(bool, u64), String> {
        self.ensure_stream(name);
        let width = self.config.learner.window_width;
        let late = {
            let state = self.streams.get_mut(name).expect("stream just ensured");
            let late = state.window_start.is_some_and(|ws| obs.ts < ws);
            if late {
                state.counters.late.inc();
            }
            state.learner.observe(obs);
            if state.window_start.is_none() {
                state.window_start = Some(align(obs.ts, width));
            }
            // Watermark: one u64 compare per row, cheap enough to be
            // unconditional (purely observational, never snapshotted).
            state.max_ts = Some(state.max_ts.map_or(obs.ts, |m| m.max(obs.ts)));
            if state.opened_at.is_none() {
                state.opened_at = ausdb_obs::now_if_enabled();
            }
            state.counters.rows.inc();
            late
        };
        let emitted = self.close_windows_through(name, obs.ts)?;
        Ok((late, emitted))
    }

    /// Closes every window `through_ts` has moved past on stream `name`,
    /// registering each non-empty one and firing subscriber events. The
    /// jump via `min_buffered_ts` bounds iterations by the number of
    /// *non-empty* windows, so a large time skip is O(1), not O(Δt).
    pub(crate) fn close_windows_through(
        &mut self,
        name: &str,
        through_ts: u64,
    ) -> Result<u64, String> {
        let width = self.config.learner.window_width;
        let mut emitted = 0u64;
        loop {
            let closing = {
                let state = self.streams.get(name).expect("stream exists");
                let ws = state.window_start.expect("window cursor set on first row");
                (through_ts >= ws.saturating_add(width)).then_some(ws)
            };
            let Some(ws) = closing else { break };
            let start = ausdb_obs::now_if_enabled();
            let (tuples, schema, counters, opened_at) = {
                let state = self.streams.get_mut(name).expect("stream exists");
                let tuples = state.learner.emit_window(ws).map_err(|e| format!("learn: {e}"))?;
                let next = ws.saturating_add(width);
                state.window_start = Some(match state.learner.min_buffered_ts() {
                    Some(min_ts) if min_ts >= next => align(min_ts, width),
                    _ => next,
                });
                let opened_at = state.opened_at.take();
                // Rows left buffered (the closing row, at least) started
                // accumulating the next window just now.
                if state.learner.buffered_len() > 0 {
                    state.opened_at = start;
                }
                (tuples, state.learner.schema().clone(), state.counters.clone(), opened_at)
            };
            // Event-time lag: how far past this window's end the
            // watermark had run when the close fired.
            counters.event_lag.observe(through_ts.saturating_sub(ws.saturating_add(width)) as f64);
            if let Some(t0) = opened_at {
                counters.ingest_to_close.observe_duration(t0.elapsed());
            }
            let learned = tuples.len();
            if !tuples.is_empty() {
                emitted += 1;
                counters.windows.inc();
                self.session.register(name, schema, tuples);
                self.fire_events(name, ws, counters.late.get());
            }
            if let Some(t0) = start {
                let elapsed = t0.elapsed();
                self.telemetry.window_close.observe_duration(elapsed);
                journal::global().record(Level::Info, "window_close", || {
                    format!(
                        "stream={name} window_start={ws} tuples={learned} took={}us",
                        elapsed.as_micros()
                    )
                });
            }
        }
        Ok(emitted)
    }

    /// Creates the stream's learner and counter handles if absent.
    fn ensure_stream(&mut self, name: &str) {
        if !self.streams.contains_key(name) {
            let counters = self.telemetry.stream(name);
            self.streams.insert(
                name.to_string(),
                StreamState {
                    learner: StreamLearner::new(self.config.learner),
                    window_start: None,
                    max_ts: None,
                    last_ingest: None,
                    opened_at: None,
                    counters,
                },
            );
        }
    }

    // -- shard hooks -------------------------------------------------------
    //
    // `crate::shard::ShardSet` splits one logical engine across several
    // `EngineState`s by key hash. A shard only *buffers* (it never advances
    // a window cursor or registers content — the coordinator drives closes
    // with the global cursor so emission order and late accounting are
    // bit-identical to the unsharded engine), while the coordinator's core
    // state owns the merged session, subscriptions and query telemetry.

    /// Buffers one observation on a shard without touching any window
    /// cursor. `late` is the coordinator's global verdict for the row.
    pub(crate) fn observe_sharded(&mut self, name: &str, obs: RawObservation, late: bool) {
        self.ensure_stream(name);
        let state = self.streams.get_mut(name).expect("stream just ensured");
        if late {
            state.counters.late.inc();
        }
        state.learner.observe(obs);
        state.counters.rows.inc();
    }

    /// Emits (and evicts) the window starting at `ws` from the shard's
    /// learner, returning the learned tuples without registering them or
    /// bumping any counter. A stream this shard never saw yields no tuples.
    pub(crate) fn emit_stream_window(&mut self, name: &str, ws: u64) -> Result<Vec<Tuple>, String> {
        match self.streams.get_mut(name) {
            Some(state) => state.learner.emit_window(ws).map_err(|e| format!("learn: {e}")),
            None => Ok(Vec::new()),
        }
    }

    /// Registers a merged closed window on the core state: session content,
    /// subscriber fan-out, and window-close telemetry (the per-stream
    /// `windows_emitted` counter is the coordinator's to bump).
    pub(crate) fn register_closed_window(
        &mut self,
        name: &str,
        schema: Schema,
        tuples: Vec<Tuple>,
        ws: u64,
        late_rows: u64,
    ) {
        let start = ausdb_obs::now_if_enabled();
        let learned = tuples.len();
        self.session.register(name, schema, tuples);
        self.fire_events(name, ws, late_rows);
        if let Some(t0) = start {
            let elapsed = t0.elapsed();
            self.telemetry.window_close.observe_duration(elapsed);
            journal::global().record(Level::Info, "window_close", || {
                format!(
                    "stream={name} window_start={ws} tuples={learned} took={}us",
                    elapsed.as_micros()
                )
            });
        }
    }

    /// The earliest buffered observation timestamp on this shard's copy of
    /// `name`, if any.
    pub(crate) fn min_buffered_ts_for(&self, name: &str) -> Option<u64> {
        self.streams.get(name).and_then(|s| s.learner.min_buffered_ts())
    }

    /// Buffered observations on this shard's copy of `name`.
    pub(crate) fn buffered_len_for(&self, name: &str) -> usize {
        self.streams.get(name).map_or(0, |s| s.learner.buffered_len())
    }

    /// `(rows, late)` counter values for this shard's copy of `name`.
    pub(crate) fn stream_counts(&self, name: &str) -> (u64, u64) {
        self.streams.get(name).map_or((0, 0), |s| (s.counters.rows.get(), s.counters.late.get()))
    }

    /// The learner behind `name`, if this shard has seen the stream.
    pub(crate) fn learner_for(&self, name: &str) -> Option<&StreamLearner> {
        self.streams.get(name).map(|s| &s.learner)
    }

    /// Installs a rebuilt learner for `name` (restore path). Any previous
    /// state for the stream is replaced; counter series are re-fetched by
    /// name so a restored stream resumes its counts.
    pub(crate) fn install_stream(&mut self, name: &str, learner: StreamLearner) {
        let counters = self.telemetry.stream(name);
        self.streams.insert(
            name.to_string(),
            StreamState {
                learner,
                window_start: None,
                max_ts: None,
                last_ingest: None,
                opened_at: None,
                counters,
            },
        );
    }

    /// Drops every stream (restore path; counters and session untouched).
    pub(crate) fn clear_streams(&mut self) {
        self.streams.clear();
    }

    /// Resets the query session, keeping its config and batch size
    /// (restore path for the coordinator's core state).
    pub(crate) fn reset_session(&mut self) {
        let mut session = Session::new();
        session.config = self.session.config;
        session.batch_size = self.session.batch_size;
        self.session = session;
    }

    /// Registers content for `name` in the query session without firing
    /// events (restore path).
    pub(crate) fn register_stream_content(
        &mut self,
        name: &str,
        schema: Schema,
        tuples: Vec<Tuple>,
    ) {
        self.session.register(name, schema, tuples);
    }

    /// This instance's metric registry.
    pub(crate) fn registry(&self) -> &Registry {
        &self.telemetry.registry
    }

    /// The per-stream `windows_emitted` counter handle (creating the
    /// stream's series if needed).
    pub(crate) fn windows_counter(&self, name: &str) -> Arc<Counter> {
        self.telemetry.stream(name).windows
    }

    /// The per-stream `(event_lag, ingest_to_close)` histogram handles
    /// (creating the stream's series if needed) — the sharded
    /// coordinator caches these next to its windows counter.
    pub(crate) fn lag_histograms(&self, name: &str) -> (Arc<Histogram>, Arc<Histogram>) {
        let c = self.telemetry.stream(name);
        (c.event_lag, c.ingest_to_close)
    }

    /// Stamps the stream's last-ingest wall clock (telemetry-gated; one
    /// `Instant` read per ingest *call*, not per row, so batch frames pay
    /// it once).
    pub(crate) fn note_ingest(&mut self, name: &str) {
        if let Some(now) = ausdb_obs::now_if_enabled() {
            if let Some(state) = self.streams.get_mut(name) {
                state.last_ingest = Some(now);
            }
        }
    }

    /// Per-stream health snapshots for the `HEALTH` verb.
    pub(crate) fn stream_health(&self) -> Vec<StreamHealth> {
        self.streams
            .iter()
            .map(|(name, st)| StreamHealth {
                name: name.clone(),
                watermark: st.max_ts,
                age_us: st.last_ingest.map(|t| t.elapsed().as_micros() as u64),
                buffered: st.learner.buffered_len(),
            })
            .collect()
    }

    /// The highest total subscriber queue depth observed since start.
    pub(crate) fn backlog_highwater(&self) -> u64 {
        self.telemetry.backlog_highwater_raw.load(Ordering::Relaxed)
    }

    /// Samples the per-stream subscriber queue-depth gauges (and the
    /// backlog high-water mark) from current queue sizes. Streams that
    /// lost their last subscriber are pinned back to 0.
    pub(crate) fn sample_queue_depth(&self) {
        let mut per_stream: BTreeMap<String, usize> = BTreeMap::new();
        for sub in self.subscriptions.values() {
            *per_stream.entry(sub.stream.clone()).or_default() += sub.queue.len();
        }
        self.telemetry.note_backlog(per_stream.values().map(|&n| n as u64).sum());
        let mut known =
            self.telemetry.queue_streams.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        known.extend(per_stream.keys().cloned());
        for name in known.iter() {
            let depth = per_stream.get(name).copied().unwrap_or(0);
            self.telemetry
                .registry
                .gauge("ausdb_subscriber_queue_depth", QUEUE_DEPTH_HELP, &[("stream", name)])
                .set(depth as f64);
        }
    }

    /// The `STATS` per-subscriber lines plus the last-query block, without
    /// the server/stream lines (the coordinator renders those itself).
    pub(crate) fn subscriber_and_query_stat_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (id, sub) in &self.subscriptions {
            out.push(format!(
                "subscriber {id} stream={} queued={} dropped_pending={}",
                sub.stream,
                sub.queue.len(),
                sub.queue.dropped()
            ));
        }
        if let Some(report) = &self.last_stats {
            out.push("last query:".to_string());
            out.extend(report.to_string().lines().map(|l| format!("  {l}")));
        }
        out
    }

    /// Runs a one-shot statement against the current stream contents,
    /// recording its operator stats for `STATS` when it executed (SELECT
    /// and `EXPLAIN ANALYZE`; a plain `EXPLAIN` only plans).
    pub fn query(&mut self, sql: &str) -> Result<QueryReply, String> {
        let start = ausdb_obs::now_if_enabled();
        match run_statement_with_stats(&self.session, sql) {
            Ok((out, report)) => {
                self.telemetry.queries.inc();
                if let Some(t0) = start {
                    let elapsed = t0.elapsed();
                    self.telemetry.query_latency.observe_duration(elapsed);
                    journal::global().record(Level::Info, "query", || {
                        let what = match &out {
                            SqlOutput::Rows { tuples, .. } => format!("rows={}", tuples.len()),
                            SqlOutput::Plan(_) => "plan".to_string(),
                        };
                        format!("{what} took={}us", elapsed.as_micros())
                    });
                }
                if let Some(report) = report {
                    self.last_stats = Some(report);
                }
                Ok(match out {
                    SqlOutput::Rows { schema, tuples } => QueryReply::Rows(schema, tuples),
                    SqlOutput::Plan(text) => {
                        QueryReply::Plan(text.lines().map(str::to_string).collect())
                    }
                })
            }
            Err(e) => {
                journal::global().record(Level::Warn, "query", || format!("error: {e}"));
                Err(e.to_string())
            }
        }
    }

    /// Registers a standing query. Returns `(id, stream)` on success.
    pub fn subscribe(&mut self, sql: &str) -> Result<(u64, String, Arc<SubscriberQueue>), String> {
        if self.subscriptions.len() >= self.config.max_subscribers {
            return Err(format!("subscriber limit {} reached", self.config.max_subscribers));
        }
        let stmt = parse(sql).map_err(|e| e.to_string())?;
        let stream = stmt.from.to_ascii_lowercase();
        let id = self.next_subscription_id;
        self.next_subscription_id += 1;
        let queue = Arc::new(SubscriberQueue::new(self.config.queue_cap));
        self.subscriptions.insert(
            id,
            Subscription {
                stream: stream.clone(),
                sql: sql.to_string(),
                queue: Arc::clone(&queue),
            },
        );
        Ok((id, stream, queue))
    }

    /// Cancels a subscription (and any SLO attached to it); returns
    /// whether it existed.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        self.slo_targets.remove(&id);
        self.subscriptions.remove(&id).is_some()
    }

    /// Registers (or replaces) an accuracy SLO on standing query `id`:
    /// from now on, every window-close evaluation whose widest CI
    /// exceeds `width` counts a violation, pushes an `ACCURACY` notice
    /// on the subscriber's queue, and journals a WARN `slo` span.
    pub fn set_slo(&mut self, id: u64, width: f64) -> Result<(), String> {
        if !(width.is_finite() && width > 0.0) {
            return Err(format!("bad SLO width {width} (want a finite value > 0)"));
        }
        if !self.subscriptions.contains_key(&id) {
            return Err(format!("no subscription {id}"));
        }
        let (violations, over) = self.telemetry.slo(id);
        self.slo_targets.insert(id, SloTarget { width, violations, over });
        Ok(())
    }

    /// `(registered targets, total violations)` across every accuracy
    /// SLO — the `HEALTH` summary fields.
    pub fn slo_summary(&self) -> (usize, u64) {
        (self.slo_targets.len(), self.slo_targets.values().map(|t| t.violations.get()).sum())
    }

    /// The `SLO LIST` payload: one line per registered target.
    pub fn slo_lines(&self) -> Vec<String> {
        self.slo_targets
            .iter()
            .map(|(id, t)| {
                let stream = self.subscriptions.get(id).map_or("-", |s| s.stream.as_str());
                format!(
                    "SLO {id} stream={stream} target={} violations={}",
                    t.width,
                    t.violations.get()
                )
            })
            .collect()
    }

    /// Evaluates query `id`'s SLO against freshly computed result tuples,
    /// returning the `ACCURACY` notice line on a violation. Reads only
    /// already-computed accuracy info — results are never touched.
    fn check_slo(&self, id: u64, tuples: &[Tuple], window_start: u64) -> Option<String> {
        let target = self.slo_targets.get(&id)?;
        let width = max_ci_width(tuples);
        target.over.set((width - target.width).max(0.0));
        if width <= target.width {
            return None;
        }
        target.violations.inc();
        journal::global().record(Level::Warn, "slo", || {
            format!(
                "query={id} window_start={window_start} width={width} target={} violated",
                target.width
            )
        });
        Some(format!("ACCURACY {id} width={width} target={}", target.width))
    }

    /// Number of active subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Re-evaluates every subscription on `stream` and pushes the result
    /// into its queue as an `EVENT` block. `late_rows` is the stream's
    /// cumulative late count at this close (shard-count invariant by the
    /// merge invariant), recorded into the accuracy trajectory.
    fn fire_events(&self, stream: &str, window_start: u64, late_rows: u64) {
        let mut matched = 0usize;
        let engine = ausdb_engine::obs::telemetry::global();
        for (&id, sub) in &self.subscriptions {
            if sub.stream != stream {
                continue;
            }
            matched += 1;
            self.telemetry.events.inc();
            // Engine counter baselines: the deltas across this evaluation
            // are the per-window resample / coupled-verdict costs that go
            // into the accuracy trajectory. Counters always count, so the
            // point is identical with telemetry on or off.
            let resamples0 = engine.bootstrap_resamples.get();
            let true0 = engine.verdict(Some(true)).get();
            let false0 = engine.verdict(Some(false)).get();
            match run_sql(&self.session, &sub.sql) {
                Ok((_, tuples)) => {
                    let notice = self.check_slo(id, &tuples, window_start);
                    self.history.record_accuracy(
                        id,
                        AccuracyPoint {
                            window_start,
                            ci_width: max_ci_width(&tuples),
                            df_n: max_sample_size(&tuples),
                            resamples: engine.bootstrap_resamples.get() - resamples0,
                            verdicts_true: engine.verdict(Some(true)).get() - true0,
                            verdicts_false: engine.verdict(Some(false)).get() - false0,
                            rows: tuples.len() as u64,
                            late_rows,
                        },
                    );
                    let rows = render_rows(&tuples);
                    let header = format!("EVENT {id} WINDOW {window_start} ROWS {}", rows.len());
                    sub.queue.push_all(std::iter::once(header).chain(rows).chain(notice));
                }
                Err(e) => {
                    sub.queue.push(format!("EVENT {id} ERR {e}"));
                }
            }
        }
        if matched > 0 {
            let backlog: usize = self.subscriptions.values().map(|s| s.queue.len()).sum();
            self.telemetry.note_backlog(backlog as u64);
            journal::global().record(Level::Info, "fanout", || {
                format!("stream={stream} window_start={window_start} subscribers={matched}")
            });
        }
    }

    /// `STATS` payload: server counters, per-stream and per-subscriber
    /// lines, then the last query's operator report.
    pub fn stats_lines(&self) -> Vec<String> {
        let c = self.counters();
        let mut out = vec![format!(
            "server rows_ingested={} late_rows={} windows_emitted={} queries={} events={} \
             subscribers={} streams={}",
            c.rows_ingested,
            c.late_rows,
            c.windows_emitted,
            c.queries_run,
            c.events_emitted,
            self.subscriptions.len(),
            self.streams.len()
        )];
        for (name, st) in &self.streams {
            let registered = self.session.stream(name).map(|(_, t)| t.len()).unwrap_or(0);
            out.push(format!(
                "stream {name} buffered={} window_start={} registered_rows={registered} rows={} \
                 late_rows={}",
                st.learner.buffered_len(),
                st.window_start.map_or_else(|| "-".to_string(), |ws| ws.to_string()),
                st.counters.rows.get(),
                st.counters.late.get(),
            ));
        }
        for (id, sub) in &self.subscriptions {
            out.push(format!(
                "subscriber {id} stream={} queued={} dropped_pending={}",
                sub.stream,
                sub.queue.len(),
                sub.queue.dropped()
            ));
        }
        if let Some(report) = &self.last_stats {
            out.push("last query:".to_string());
            out.extend(report.to_string().lines().map(|l| format!("  {l}")));
        }
        out
    }

    // -- snapshot / restore ------------------------------------------------

    /// Captures everything a restart needs: each stream's learner (with
    /// its buffered observations), window cursor, and currently registered
    /// window contents. Subscriptions are connection-scoped and deliberately
    /// not persisted.
    pub fn to_snapshot(&self) -> ServerSnapshot {
        let start = ausdb_obs::now_if_enabled();
        let streams: Vec<StreamSnapshot> = self
            .streams
            .iter()
            .map(|(name, st)| StreamSnapshot {
                name: name.clone(),
                learner: encode_learner(&st.learner),
                window_start: st.window_start,
                registered: self
                    .session
                    .stream(name)
                    .map(|(schema, tuples)| (schema.clone(), tuples.to_vec())),
            })
            .collect();
        if let Some(t0) = start {
            let elapsed = t0.elapsed();
            self.telemetry.snapshot_encode.observe_duration(elapsed);
            journal::global().record(Level::Info, "snapshot", || {
                format!("encode streams={} took={}us", streams.len(), elapsed.as_micros())
            });
        }
        ServerSnapshot { streams, wal_seq: 0 }
    }

    /// Replaces all stream/learner/session state with the snapshot's.
    /// Counters and live subscriptions are untouched; the session keeps
    /// its current `QueryConfig` (seeds are not part of a snapshot).
    pub fn restore(&mut self, snapshot: ServerSnapshot) -> Result<usize, String> {
        let start = ausdb_obs::now_if_enabled();
        let mut streams = BTreeMap::new();
        let mut session = Session::new();
        session.config = self.session.config;
        session.batch_size = self.session.batch_size;
        for s in snapshot.streams {
            let learner = decode_learner(&s.learner).map_err(|e| e.to_string())?;
            if let Some((schema, tuples)) = s.registered {
                session.register(&s.name, schema, tuples);
            }
            // Counter handles are re-fetched by name: a stream that
            // existed before the restore keeps its series (and counts) in
            // this instance's registry.
            let counters = self.telemetry.stream(&s.name);
            streams.insert(
                s.name,
                StreamState {
                    learner,
                    window_start: s.window_start,
                    max_ts: None,
                    last_ingest: None,
                    opened_at: None,
                    counters,
                },
            );
        }
        let n = streams.len();
        self.streams = streams;
        self.session = session;
        if let Some(t0) = start {
            let elapsed = t0.elapsed();
            self.telemetry.snapshot_decode.observe_duration(elapsed);
            journal::global().record(Level::Info, "snapshot", || {
                format!("decode streams={n} took={}us", elapsed.as_micros())
            });
        }
        Ok(n)
    }
}

/// Serialized form of one stream's state.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Stream name (lowercased).
    pub name: String,
    /// The learner's own encoded snapshot payload.
    pub learner: Vec<u8>,
    /// Open-window cursor.
    pub window_start: Option<u64>,
    /// The stream's registered content (last non-empty closed window).
    pub registered: Option<(Schema, Vec<Tuple>)>,
}

/// Serialized form of the whole engine: the unit [`crate::snapshot`]
/// writes to disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerSnapshot {
    /// Every known stream.
    pub streams: Vec<StreamSnapshot>,
    /// WAL watermark: the sequence number of the last WAL record whose
    /// effects this snapshot contains. Recovery replays only records with
    /// `seq > wal_seq`. Zero when no WAL was attached (and in every
    /// pre-WAL, format-version-1 snapshot).
    pub wal_seq: u64,
}

// The learner lives in another crate; nest its encoding as a byte payload
// so each crate owns its own format.
pub(crate) fn encode_learner(learner: &StreamLearner) -> Vec<u8> {
    let mut w = Writer::new();
    learner.encode(&mut w);
    w.into_bytes()
}

pub(crate) fn decode_learner(bytes: &[u8]) -> Result<StreamLearner, CodecError> {
    let mut r = Reader::new(bytes, ausdb_model::codec::FORMAT_VERSION);
    let learner = StreamLearner::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(learner)
}

impl Codec for StreamSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_len(self.learner.len());
        w.put_bytes(&self.learner);
        self.window_start.encode(w);
        self.registered.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = r.get_str("stream name")?;
        let n = r.get_len("learner payload length")?;
        let mut learner = Vec::with_capacity(n);
        for _ in 0..n {
            learner.push(r.get_u8("learner payload")?);
        }
        Ok(Self {
            name,
            learner,
            window_start: Option::<u64>::decode(r)?,
            registered: Option::<(Schema, Vec<Tuple>)>::decode(r)?,
        })
    }
}

impl Codec for ServerSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.streams.encode(w);
        w.put_u64(self.wal_seq);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let streams = Vec::<StreamSnapshot>::decode(r)?;
        // The watermark arrived with format version 2; a version-1
        // snapshot predates the WAL, so nothing is replay-covered.
        let wal_seq = if r.version() >= 2 { r.get_u64("wal watermark")? } else { 0 };
        Ok(Self { streams, wal_seq })
    }
}

/// Aligns a timestamp down to its window's start.
pub(crate) fn align(ts: u64, width: u64) -> u64 {
    ts - ts % width.max(1)
}

/// The widest confidence interval advertised anywhere in a result set:
/// tuple membership CIs plus every field's mean/variance/bin CIs. A
/// result with no accuracy info has width 0 (an exact answer trivially
/// meets any SLO).
pub(crate) fn max_ci_width(tuples: &[Tuple]) -> f64 {
    let mut width = 0.0f64;
    for t in tuples {
        if let Some(ci) = &t.membership.ci {
            width = width.max(ci.length());
        }
        for field in &t.fields {
            let Some(acc) = &field.accuracy else { continue };
            for ci in acc.mean_ci.iter().chain(acc.variance_ci.iter()) {
                width = width.max(ci.length());
            }
            for ci in acc.bin_cis.iter().flatten() {
                width = width.max(ci.length());
            }
        }
    }
    width
}

/// The de-facto sample size behind a result set: the largest `n`
/// advertised by any tuple's membership probability, field, or field
/// accuracy info. 0 when the result carries no sample-size information.
pub(crate) fn max_sample_size(tuples: &[Tuple]) -> u64 {
    let mut n = 0usize;
    for t in tuples {
        n = n.max(t.membership.sample_size.unwrap_or(0));
        for field in &t.fields {
            n = n.max(field.sample_size.unwrap_or(0));
            if let Some(acc) = &field.accuracy {
                n = n.max(acc.sample_size);
            }
        }
    }
    n as u64
}

/// Validates a stream name: SQL-identifier-shaped, lowercased.
pub(crate) fn normalize_stream_name(name: &str) -> Result<String, String> {
    let ok = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok {
        Ok(name.to_ascii_lowercase())
    } else {
        Err(format!("bad stream name '{name}' (want [A-Za-z_][A-Za-z0-9_]*)"))
    }
}

/// Parses an `INGEST` row: `key,ts,value` with the same timestamp forms as
/// CSV ingestion (integer or `H:MM[:SS]`).
pub(crate) fn parse_observation(row: &str) -> Result<RawObservation, String> {
    let cells: Vec<&str> = row.split(',').map(str::trim).collect();
    if cells.len() != 3 {
        return Err(format!("expected key,ts,value — got {} cells", cells.len()));
    }
    let key: i64 = cells[0].parse().map_err(|_| format!("bad key '{}'", cells[0]))?;
    let ts = parse_timestamp(cells[1]).ok_or_else(|| format!("bad timestamp '{}'", cells[1]))?;
    let value: f64 = cells[2].parse().map_err(|_| format!("bad value '{}'", cells[2]))?;
    if !value.is_finite() {
        return Err(format!("non-finite value {value}"));
    }
    Ok(RawObservation::new(key, ts, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ausdb_learn::accuracy::DistKind;

    fn test_config() -> EngineConfig {
        EngineConfig {
            learner: LearnerConfig {
                kind: DistKind::Empirical,
                level: 0.9,
                window_width: 10,
                min_observations: 2,
            },
            max_subscribers: 4,
            queue_cap: 64,
            shards: 1,
        }
    }

    fn ingest_window(state: &mut EngineState, base_ts: u64) -> IngestOutcome {
        state.ingest("traffic", &format!("19,{},56", base_ts)).unwrap();
        state.ingest("traffic", &format!("19,{},38", base_ts + 1)).unwrap();
        state.ingest("traffic", &format!("19,{},97", base_ts + 1)).unwrap();
        // This row is in the next window: closes the previous one.
        state.ingest("traffic", &format!("19,{},60", base_ts + 10)).unwrap()
    }

    #[test]
    fn window_close_registers_stream() {
        let mut state = EngineState::new(test_config());
        let out = ingest_window(&mut state, 100);
        assert_eq!(out.windows_emitted, 1);
        let (schema, tuples) = state.session().stream("traffic").expect("registered");
        assert_eq!(schema.columns().len(), 2);
        assert_eq!(tuples.len(), 1, "one key in the window");
        assert_eq!(state.counters().rows_ingested, 4);
    }

    #[test]
    fn large_time_jump_is_single_close() {
        let mut state = EngineState::new(test_config());
        state.ingest("s", "1,0,5").unwrap();
        state.ingest("s", "1,1,6").unwrap();
        // Jump ~10^15 windows ahead: must close exactly one non-empty
        // window (and return promptly — O(non-empty), not O(Δt)).
        let out = state.ingest("s", "1,10000000000000000,7").unwrap();
        assert_eq!(out.windows_emitted, 1);
        assert_eq!(state.counters().windows_emitted, 1);
    }

    #[test]
    fn late_rows_counted_not_emitted() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        state.ingest("traffic", "19,50,1").unwrap(); // long before the open window
        assert_eq!(state.counters().late_rows, 1);
    }

    #[test]
    fn subscribe_fires_on_window_close() {
        let mut state = EngineState::new(test_config());
        let (id, stream, queue) = state.subscribe("SELECT * FROM traffic").unwrap();
        assert_eq!(stream, "traffic");
        assert!(queue.is_empty(), "no events before any window closes");
        ingest_window(&mut state, 100);
        let lines = queue.drain();
        assert!(
            lines[0].starts_with(&format!("EVENT {id} WINDOW 100 ROWS ")),
            "got: {:?}",
            lines[0]
        );
        assert!(lines.len() >= 2, "header plus at least one row");
        assert!(state.unsubscribe(id));
        assert!(!state.unsubscribe(id));
    }

    #[test]
    fn subscriber_limit_enforced() {
        let mut state = EngineState::new(test_config());
        for _ in 0..4 {
            state.subscribe("SELECT * FROM traffic").unwrap();
        }
        assert!(state.subscribe("SELECT * FROM traffic").is_err());
    }

    #[test]
    fn snapshot_restore_is_identical() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        state.ingest("traffic", "19,111,42").unwrap(); // buffered, window open
        let snap = state.to_snapshot();

        let mut restored = EngineState::new(test_config());
        restored.restore(snap.clone()).unwrap();
        assert_eq!(restored.to_snapshot(), snap, "restore is lossless");

        // Same subsequent ingest ⇒ same registered tuples, bit for bit.
        state.ingest("traffic", "19,120,9").unwrap();
        restored.ingest("traffic", "19,120,9").unwrap();
        let (_, a) = state.session().stream("traffic").unwrap();
        let (_, b) = restored.session().stream("traffic").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ingest_batch_matches_serial_ingest() {
        let rows = [
            RawObservation::new(19, 100, 56.0),
            RawObservation::new(7, 101, 38.5),
            RawObservation::new(19, 103, 97.25),
            RawObservation::new(19, 95, 1.0), // late once the window opens at 100
            RawObservation::new(7, 112, 41.0),
            RawObservation::new(19, 131, 9.0),
        ];
        let mut serial = EngineState::new(test_config());
        for r in rows {
            serial.ingest("traffic", &format!("{},{},{}", r.key, r.ts, r.value)).unwrap();
        }
        let mut batched = EngineState::new(test_config());
        let out = batched.ingest_batch("traffic", &rows).unwrap();
        assert_eq!(out.accepted, rows.len() as u64);
        assert_eq!(out.late, serial.counters().late_rows);
        assert_eq!(out.windows_emitted, serial.counters().windows_emitted);
        assert_eq!(batched.to_snapshot(), serial.to_snapshot(), "bit-identical state");
        // A non-finite value anywhere rejects the whole frame.
        let mut state = EngineState::new(test_config());
        let bad = [RawObservation::new(1, 0, 1.0), RawObservation::new(1, 1, f64::NAN)];
        assert!(state.ingest_batch("traffic", &bad).is_err());
        assert_eq!(state.counters().rows_ingested, 0, "nothing applied");
    }

    #[test]
    fn bad_rows_and_names_rejected() {
        let mut state = EngineState::new(test_config());
        assert!(state.ingest("s", "1,2").is_err());
        assert!(state.ingest("s", "x,2,3").is_err());
        assert!(state.ingest("s", "1,zz,3").is_err());
        assert!(state.ingest("s", "1,2,inf").is_err());
        assert!(state.ingest("9bad", "1,2,3").is_err());
        assert!(state.ingest("", "1,2,3").is_err());
        assert_eq!(state.counters().rows_ingested, 0);
    }

    #[test]
    fn metrics_text_reports_per_stream_counters() {
        ausdb_obs::set_enabled(true);
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        state.ingest("traffic", "19,50,1").unwrap(); // late row
        state.query("SELECT * FROM traffic").unwrap();
        let text = state.metrics_text();
        assert!(text.contains("ausdb_rows_ingested_total{stream=\"traffic\"} 5"), "{text}");
        assert!(text.contains("ausdb_late_rows_total{stream=\"traffic\"} 1"), "{text}");
        assert!(text.contains("ausdb_windows_emitted_total{stream=\"traffic\"} 1"), "{text}");
        assert!(text.contains("ausdb_queries_total 1"), "{text}");
        assert!(text.contains("# TYPE ausdb_query_latency_seconds histogram"), "{text}");
        assert!(text.contains("ausdb_subscriber_backlog_highwater 0"), "{text}");
        // The new lag families appear per stream once a window closed.
        assert!(text.contains("ausdb_event_time_lag_seconds_count{stream=\"traffic\"}"), "{text}");
        assert!(text.contains("ausdb_ingest_to_close_seconds_count{stream=\"traffic\"}"), "{text}");
        // Engine-wide accuracy families are merged into the exposition.
        assert!(text.contains("# TYPE ausdb_sig_verdicts_total counter"), "{text}");
        assert!(text.contains("# TYPE ausdb_ci_relative_width histogram"), "{text}");
        // The STATS view is computed from the same registry.
        let c = state.counters();
        assert_eq!((c.rows_ingested, c.late_rows, c.windows_emitted, c.queries_run), (5, 1, 1, 1));
        let stats = state.stats_lines();
        assert!(
            stats.iter().any(|l| l.starts_with("stream traffic") && l.contains("late_rows=1")),
            "per-stream late_rows in STATS: {stats:?}"
        );
    }

    #[test]
    fn queue_depth_gauges_are_per_stream_with_highwater() {
        ausdb_obs::set_enabled(true);
        let mut state = EngineState::new(test_config());
        let (_, _, queue) = state.subscribe("SELECT * FROM traffic").unwrap();
        ingest_window(&mut state, 100); // one EVENT block queued, never drained
        let queued = queue.len();
        assert!(queued >= 2, "header plus rows");
        let text = state.metrics_text();
        assert!(
            text.contains(&format!("ausdb_subscriber_queue_depth{{stream=\"traffic\"}} {queued}")),
            "{text}"
        );
        assert!(text.contains(&format!("ausdb_subscriber_backlog_highwater {queued}")), "{text}");
        assert!(state.backlog_highwater() as usize >= queued);
        // Draining (and dropping the subscriber) pins the series to 0 —
        // but the high-water mark keeps the peak.
        queue.drain();
        let text = state.metrics_text();
        assert!(text.contains("ausdb_subscriber_queue_depth{stream=\"traffic\"} 0"), "{text}");
        assert!(text.contains(&format!("ausdb_subscriber_backlog_highwater {queued}")), "{text}");
    }

    #[test]
    fn slo_violation_fires_notice_counter_and_gauge() {
        ausdb_obs::set_enabled(true);
        let mut state = EngineState::new(test_config());
        let (id, _, queue) = state.subscribe("SELECT * FROM traffic").unwrap();
        // SLO management: unknown id / bad widths rejected.
        assert!(state.set_slo(id + 1, 0.5).is_err());
        assert!(state.set_slo(id, 0.0).is_err());
        assert!(state.set_slo(id, f64::NAN).is_err());
        // An unreachably tight target: any learned CI is wider than 1e-9.
        state.set_slo(id, 1e-9).unwrap();
        assert_eq!(state.slo_lines().len(), 1);
        assert!(state.slo_lines()[0].contains("violations=0"), "{:?}", state.slo_lines());
        ingest_window(&mut state, 100);
        let lines = queue.drain();
        let notice = lines.iter().find(|l| l.starts_with("ACCURACY ")).expect("notice pushed");
        assert!(notice.starts_with(&format!("ACCURACY {id} width=")), "{notice}");
        assert!(notice.ends_with("target=0.000000001"), "{notice}");
        assert!(
            lines.iter().position(|l| l.starts_with("ACCURACY"))
                > lines.iter().position(|l| l.starts_with("EVENT")),
            "notice follows the EVENT block: {lines:?}"
        );
        assert!(state.slo_lines()[0].contains("violations=1"), "{:?}", state.slo_lines());
        let text = state.metrics_text();
        assert!(
            text.contains(&format!("ausdb_accuracy_slo_violations_total{{query=\"{id}\"}} 1")),
            "{text}"
        );
        assert!(text.contains(&format!("ausdb_ci_width_over_target{{query=\"{id}\"}}")), "{text}");
        // A loose target stops violating and zeroes the over-target gauge.
        state.set_slo(id, 1e9).unwrap();
        ingest_window(&mut state, 300);
        assert!(!queue.drain().iter().any(|l| l.starts_with("ACCURACY")), "loose SLO is quiet");
        let text = state.metrics_text();
        assert!(
            text.contains(&format!("ausdb_ci_width_over_target{{query=\"{id}\"}} 0")),
            "{text}"
        );
        // Unsubscribing tears the target down.
        state.unsubscribe(id);
        assert!(state.slo_lines().is_empty());
    }

    #[test]
    fn slo_watchdog_leaves_query_results_byte_identical() {
        ausdb_obs::set_enabled(true);
        let sql = "SELECT * FROM traffic";
        let mut plain = EngineState::new(test_config());
        let mut watched = EngineState::new(test_config());
        let (id, _, _queue) = watched.subscribe(sql).unwrap();
        watched.set_slo(id, 1e-9).unwrap();
        ingest_window(&mut plain, 100);
        ingest_window(&mut watched, 100);
        let QueryReply::Rows(_, a) = plain.query(sql).unwrap() else { panic!("rows") };
        let QueryReply::Rows(_, b) = watched.query(sql).unwrap() else { panic!("rows") };
        assert_eq!(a, b, "the watchdog observes, it never perturbs");
        assert_eq!(plain.to_snapshot(), watched.to_snapshot());
    }

    #[test]
    fn stream_health_tracks_watermark_and_buffer() {
        ausdb_obs::set_enabled(true);
        let mut state = EngineState::new(test_config());
        assert!(state.stream_health().is_empty());
        ingest_window(&mut state, 100);
        let health = state.stream_health();
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].name, "traffic");
        assert_eq!(health[0].watermark, Some(110), "largest ts seen");
        assert_eq!(health[0].buffered, 1, "the closing row stays buffered");
        assert!(health[0].age_us.is_some(), "telemetry on ⇒ ages are tracked");
        // A late row never drags the watermark backwards.
        state.ingest("traffic", "19,50,1").unwrap();
        assert_eq!(state.stream_health()[0].watermark, Some(110));
    }

    #[test]
    fn max_ci_width_spans_membership_and_field_cis() {
        use ausdb_model::accuracy::TupleProbability;
        use ausdb_model::tuple::Field;
        use ausdb_stats::ci::ConfidenceInterval;
        assert_eq!(max_ci_width(&[]), 0.0);
        let plain = Tuple::certain(1, vec![Field::plain(1.0)]);
        assert_eq!(max_ci_width(std::slice::from_ref(&plain)), 0.0, "no accuracy info = exact");
        let mut t = plain;
        t.membership = TupleProbability {
            p: 0.5,
            ci: Some(ConfidenceInterval::new(0.4, 0.6, 0.9)),
            sample_size: Some(10),
        };
        t.fields[0].accuracy = Some(
            ausdb_model::accuracy::AccuracyInfo::new(10)
                .with_mean_ci(ConfidenceInterval::new(1.0, 2.5, 0.9)),
        );
        let width = max_ci_width(&[t]);
        assert!((width - 1.5).abs() < 1e-12, "widest CI wins: {width}");
    }

    #[test]
    fn restored_stream_resumes_its_counter_series() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        let snap = state.to_snapshot();
        assert_eq!(state.counters().rows_ingested, 4);
        state.restore(snap).unwrap();
        // Same registry, same series: counts survive the restore.
        state.ingest("traffic", "19,200,3").unwrap();
        assert_eq!(state.counters().rows_ingested, 5);
    }

    #[test]
    fn query_records_stats() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        let QueryReply::Rows(_, tuples) = state.query("SELECT * FROM traffic").unwrap() else {
            panic!("SELECT returns rows");
        };
        assert_eq!(tuples.len(), 1);
        assert!(state.stats_lines().iter().any(|l| l.contains("last query:")));
        assert!(state.query("SELECT * FROM nosuch").is_err());
    }

    #[test]
    fn explain_statements_return_plans() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        let QueryReply::Plan(plan) = state.query("EXPLAIN SELECT * FROM traffic").unwrap() else {
            panic!("EXPLAIN returns a plan");
        };
        assert!(plan.iter().any(|l| l.contains("Scan [traffic]")), "{plan:?}");
        // Plain EXPLAIN does not execute, so it leaves no operator stats.
        assert!(!state.stats_lines().iter().any(|l| l.contains("last query:")));
        let QueryReply::Plan(plan) =
            state.query("EXPLAIN ANALYZE SELECT * FROM traffic WHERE value > 40").unwrap()
        else {
            panic!("EXPLAIN ANALYZE returns a plan");
        };
        assert!(plan.iter().any(|l| l.contains("Filter") && l.contains("in=")), "{plan:?}");
        assert!(plan.iter().any(|l| l.starts_with("total:")), "{plan:?}");
        // ANALYZE executed, so STATS now carries the operator report.
        assert!(state.stats_lines().iter().any(|l| l.contains("last query:")));
    }
}
