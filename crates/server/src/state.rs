//! The server's shared engine state: per-stream learners, the query
//! session, subscriptions, and snapshot/restore.
//!
//! This is the glue the paper's Figure 1 implies but the one-shot CLI
//! never needed: raw rows stream in per connection, per-key learners
//! buffer them, and each **closed window** turns into a registered
//! probabilistic relation that one-shot `QUERY`s and standing
//! `SUBSCRIBE`s evaluate against — with the learned distributions
//! carrying their accuracy information end to end.
//!
//! ## Window semantics
//!
//! Windows are aligned: observation `ts` belongs to the window starting at
//! `ts - ts % width`. A window *closes* when an observation at or past its
//! end arrives on the same stream; closing learns one probabilistic tuple
//! per key (`emit_window`), registers the result as the stream's current
//! content, and fans events out to subscribers. Ingest that jumps far
//! ahead in time skips empty windows via
//! [`StreamLearner::min_buffered_ts`] instead of closing them one by one.
//! Observations older than the current window are dropped at the next
//! close (counted as `late_rows` in `STATS`).

use std::collections::BTreeMap;
use std::sync::Arc;

use ausdb_engine::obs::StatsReport;
use ausdb_engine::query::Session;
use ausdb_learn::ingest::parse_timestamp;
use ausdb_learn::learner::{LearnerConfig, RawObservation, StreamLearner};
use ausdb_model::codec::{Codec, CodecError, Reader, Writer};
use ausdb_model::schema::Schema;
use ausdb_model::tuple::Tuple;
use ausdb_sql::parser::parse;
use ausdb_sql::planner::{run_sql, run_sql_with_stats};

use crate::render::render_rows;
use crate::subscriber::SubscriberQueue;

/// Engine-level configuration (the server's `ServerConfig` carries this
/// plus the transport settings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Learner settings applied to every new stream.
    pub learner: LearnerConfig,
    /// Maximum concurrent subscriptions across all connections.
    pub max_subscribers: usize,
    /// Per-subscriber queue capacity in protocol lines.
    pub queue_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { learner: LearnerConfig::gaussian(60), max_subscribers: 64, queue_cap: 256 }
    }
}

/// One stream's learner plus its window cursor.
#[derive(Debug)]
struct StreamState {
    learner: StreamLearner,
    /// Start of the currently open window; `None` until the first row.
    window_start: Option<u64>,
}

/// A standing query owned by some connection.
#[derive(Debug)]
pub struct Subscription {
    /// The FROM stream (lowercased) whose window closes trigger this query.
    pub stream: String,
    /// The SQL text, re-evaluated per closed window.
    pub sql: String,
    /// The subscriber's bounded event queue.
    pub queue: Arc<SubscriberQueue>,
}

/// Monotonic server counters, surfaced by `STATS`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counters {
    /// Raw rows accepted by `INGEST`.
    pub rows_ingested: u64,
    /// Rows whose timestamp predated the open window (dropped at close).
    pub late_rows: u64,
    /// Windows closed with at least one learned tuple.
    pub windows_emitted: u64,
    /// One-shot `QUERY` statements executed.
    pub queries_run: u64,
    /// Subscriber event blocks generated (before any queue drops).
    pub events_emitted: u64,
}

/// What one `INGEST` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Windows that closed with learned tuples as a result of this row.
    pub windows_emitted: u64,
}

/// The engine state shared by all connection threads (behind one mutex).
pub struct EngineState {
    config: EngineConfig,
    session: Session,
    streams: BTreeMap<String, StreamState>,
    subscriptions: BTreeMap<u64, Subscription>,
    next_subscription_id: u64,
    counters: Counters,
    last_stats: Option<StatsReport>,
}

impl EngineState {
    /// Creates an empty state.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            session: Session::new(),
            streams: BTreeMap::new(),
            subscriptions: BTreeMap::new(),
            next_subscription_id: 1,
            counters: Counters::default(),
            last_stats: None,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// The query session (registered streams = last closed windows).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Ingests one `key,ts,value` row into `stream`, closing windows and
    /// fanning out subscriber events as needed.
    pub fn ingest(&mut self, stream: &str, row: &str) -> Result<IngestOutcome, String> {
        let obs = parse_observation(row)?;
        let name = normalize_stream_name(stream)?;
        let learner_config = self.config.learner;
        let width = learner_config.window_width;
        {
            let state = self.streams.entry(name.clone()).or_insert_with(|| StreamState {
                learner: StreamLearner::new(learner_config),
                window_start: None,
            });
            if state.window_start.is_some_and(|ws| obs.ts < ws) {
                self.counters.late_rows += 1;
            }
            state.learner.observe(obs);
            if state.window_start.is_none() {
                state.window_start = Some(align(obs.ts, width));
            }
        }
        self.counters.rows_ingested += 1;
        let mut emitted = 0u64;
        // Close every window the new observation has moved past. The jump
        // via `min_buffered_ts` bounds iterations by the number of
        // *non-empty* windows, so a large time skip is O(1), not O(Δt).
        loop {
            let (tuples, schema, closed_ws) = {
                let state = self.streams.get_mut(&name).expect("stream exists");
                let ws = state.window_start.expect("window cursor set on first row");
                if obs.ts < ws.saturating_add(width) {
                    break;
                }
                let tuples = state.learner.emit_window(ws).map_err(|e| format!("learn: {e}"))?;
                let next = ws.saturating_add(width);
                state.window_start = Some(match state.learner.min_buffered_ts() {
                    Some(min_ts) if min_ts >= next => align(min_ts, width),
                    _ => next,
                });
                (tuples, state.learner.schema().clone(), ws)
            };
            if !tuples.is_empty() {
                emitted += 1;
                self.counters.windows_emitted += 1;
                self.session.register(&name, schema, tuples);
                self.fire_events(&name, closed_ws);
            }
        }
        Ok(IngestOutcome { windows_emitted: emitted })
    }

    /// Runs a one-shot query against the current stream contents,
    /// recording its operator stats for `STATS`.
    pub fn query(&mut self, sql: &str) -> Result<(Schema, Vec<Tuple>), String> {
        let (schema, tuples, report) =
            run_sql_with_stats(&self.session, sql).map_err(|e| e.to_string())?;
        self.counters.queries_run += 1;
        self.last_stats = Some(report);
        Ok((schema, tuples))
    }

    /// Registers a standing query. Returns `(id, stream)` on success.
    pub fn subscribe(&mut self, sql: &str) -> Result<(u64, String, Arc<SubscriberQueue>), String> {
        if self.subscriptions.len() >= self.config.max_subscribers {
            return Err(format!("subscriber limit {} reached", self.config.max_subscribers));
        }
        let stmt = parse(sql).map_err(|e| e.to_string())?;
        let stream = stmt.from.to_ascii_lowercase();
        let id = self.next_subscription_id;
        self.next_subscription_id += 1;
        let queue = Arc::new(SubscriberQueue::new(self.config.queue_cap));
        self.subscriptions.insert(
            id,
            Subscription {
                stream: stream.clone(),
                sql: sql.to_string(),
                queue: Arc::clone(&queue),
            },
        );
        Ok((id, stream, queue))
    }

    /// Cancels a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        self.subscriptions.remove(&id).is_some()
    }

    /// Number of active subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Re-evaluates every subscription on `stream` and pushes the result
    /// into its queue as an `EVENT` block.
    fn fire_events(&mut self, stream: &str, window_start: u64) {
        for (&id, sub) in &self.subscriptions {
            if sub.stream != stream {
                continue;
            }
            self.counters.events_emitted += 1;
            match run_sql(&self.session, &sub.sql) {
                Ok((_, tuples)) => {
                    let rows = render_rows(&tuples);
                    let header = format!("EVENT {id} WINDOW {window_start} ROWS {}", rows.len());
                    sub.queue.push_all(std::iter::once(header).chain(rows));
                }
                Err(e) => {
                    sub.queue.push(format!("EVENT {id} ERR {e}"));
                }
            }
        }
    }

    /// `STATS` payload: server counters, per-stream and per-subscriber
    /// lines, then the last query's operator report.
    pub fn stats_lines(&self) -> Vec<String> {
        let c = self.counters;
        let mut out = vec![format!(
            "server rows_ingested={} late_rows={} windows_emitted={} queries={} events={} \
             subscribers={} streams={}",
            c.rows_ingested,
            c.late_rows,
            c.windows_emitted,
            c.queries_run,
            c.events_emitted,
            self.subscriptions.len(),
            self.streams.len()
        )];
        for (name, st) in &self.streams {
            let registered = self.session.stream(name).map(|(_, t)| t.len()).unwrap_or(0);
            out.push(format!(
                "stream {name} buffered={} window_start={} registered_rows={registered}",
                st.learner.buffered_len(),
                st.window_start.map_or_else(|| "-".to_string(), |ws| ws.to_string()),
            ));
        }
        for (id, sub) in &self.subscriptions {
            out.push(format!(
                "subscriber {id} stream={} queued={} dropped_pending={}",
                sub.stream,
                sub.queue.len(),
                sub.queue.dropped()
            ));
        }
        if let Some(report) = &self.last_stats {
            out.push("last query:".to_string());
            out.extend(report.to_string().lines().map(|l| format!("  {l}")));
        }
        out
    }

    // -- snapshot / restore ------------------------------------------------

    /// Captures everything a restart needs: each stream's learner (with
    /// its buffered observations), window cursor, and currently registered
    /// window contents. Subscriptions are connection-scoped and deliberately
    /// not persisted.
    pub fn to_snapshot(&self) -> ServerSnapshot {
        let streams = self
            .streams
            .iter()
            .map(|(name, st)| StreamSnapshot {
                name: name.clone(),
                learner: encode_learner(&st.learner),
                window_start: st.window_start,
                registered: self
                    .session
                    .stream(name)
                    .map(|(schema, tuples)| (schema.clone(), tuples.to_vec())),
            })
            .collect();
        ServerSnapshot { streams }
    }

    /// Replaces all stream/learner/session state with the snapshot's.
    /// Counters and live subscriptions are untouched; the session keeps
    /// its current `QueryConfig` (seeds are not part of a snapshot).
    pub fn restore(&mut self, snapshot: ServerSnapshot) -> Result<usize, String> {
        let mut streams = BTreeMap::new();
        let mut session = Session::new();
        session.config = self.session.config;
        session.batch_size = self.session.batch_size;
        for s in snapshot.streams {
            let learner = decode_learner(&s.learner).map_err(|e| e.to_string())?;
            if let Some((schema, tuples)) = s.registered {
                session.register(&s.name, schema, tuples);
            }
            streams.insert(s.name, StreamState { learner, window_start: s.window_start });
        }
        let n = streams.len();
        self.streams = streams;
        self.session = session;
        Ok(n)
    }
}

/// Serialized form of one stream's state.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Stream name (lowercased).
    pub name: String,
    /// The learner's own encoded snapshot payload.
    pub learner: Vec<u8>,
    /// Open-window cursor.
    pub window_start: Option<u64>,
    /// The stream's registered content (last non-empty closed window).
    pub registered: Option<(Schema, Vec<Tuple>)>,
}

/// Serialized form of the whole engine: the unit [`crate::snapshot`]
/// writes to disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerSnapshot {
    /// Every known stream.
    pub streams: Vec<StreamSnapshot>,
}

// The learner lives in another crate; nest its encoding as a byte payload
// so each crate owns its own format.
fn encode_learner(learner: &StreamLearner) -> Vec<u8> {
    let mut w = Writer::new();
    learner.encode(&mut w);
    w.into_bytes()
}

fn decode_learner(bytes: &[u8]) -> Result<StreamLearner, CodecError> {
    let mut r = Reader::new(bytes, ausdb_model::codec::FORMAT_VERSION);
    let learner = StreamLearner::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(learner)
}

impl Codec for StreamSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_len(self.learner.len());
        w.put_bytes(&self.learner);
        self.window_start.encode(w);
        self.registered.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = r.get_str("stream name")?;
        let n = r.get_len("learner payload length")?;
        let mut learner = Vec::with_capacity(n);
        for _ in 0..n {
            learner.push(r.get_u8("learner payload")?);
        }
        Ok(Self {
            name,
            learner,
            window_start: Option::<u64>::decode(r)?,
            registered: Option::<(Schema, Vec<Tuple>)>::decode(r)?,
        })
    }
}

impl Codec for ServerSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.streams.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { streams: Vec::<StreamSnapshot>::decode(r)? })
    }
}

/// Aligns a timestamp down to its window's start.
fn align(ts: u64, width: u64) -> u64 {
    ts - ts % width.max(1)
}

/// Validates a stream name: SQL-identifier-shaped, lowercased.
fn normalize_stream_name(name: &str) -> Result<String, String> {
    let ok = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok {
        Ok(name.to_ascii_lowercase())
    } else {
        Err(format!("bad stream name '{name}' (want [A-Za-z_][A-Za-z0-9_]*)"))
    }
}

/// Parses an `INGEST` row: `key,ts,value` with the same timestamp forms as
/// CSV ingestion (integer or `H:MM[:SS]`).
fn parse_observation(row: &str) -> Result<RawObservation, String> {
    let cells: Vec<&str> = row.split(',').map(str::trim).collect();
    if cells.len() != 3 {
        return Err(format!("expected key,ts,value — got {} cells", cells.len()));
    }
    let key: i64 = cells[0].parse().map_err(|_| format!("bad key '{}'", cells[0]))?;
    let ts = parse_timestamp(cells[1]).ok_or_else(|| format!("bad timestamp '{}'", cells[1]))?;
    let value: f64 = cells[2].parse().map_err(|_| format!("bad value '{}'", cells[2]))?;
    if !value.is_finite() {
        return Err(format!("non-finite value {value}"));
    }
    Ok(RawObservation::new(key, ts, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ausdb_learn::accuracy::DistKind;

    fn test_config() -> EngineConfig {
        EngineConfig {
            learner: LearnerConfig {
                kind: DistKind::Empirical,
                level: 0.9,
                window_width: 10,
                min_observations: 2,
            },
            max_subscribers: 4,
            queue_cap: 64,
        }
    }

    fn ingest_window(state: &mut EngineState, base_ts: u64) -> IngestOutcome {
        state.ingest("traffic", &format!("19,{},56", base_ts)).unwrap();
        state.ingest("traffic", &format!("19,{},38", base_ts + 1)).unwrap();
        state.ingest("traffic", &format!("19,{},97", base_ts + 1)).unwrap();
        // This row is in the next window: closes the previous one.
        state.ingest("traffic", &format!("19,{},60", base_ts + 10)).unwrap()
    }

    #[test]
    fn window_close_registers_stream() {
        let mut state = EngineState::new(test_config());
        let out = ingest_window(&mut state, 100);
        assert_eq!(out.windows_emitted, 1);
        let (schema, tuples) = state.session().stream("traffic").expect("registered");
        assert_eq!(schema.columns().len(), 2);
        assert_eq!(tuples.len(), 1, "one key in the window");
        assert_eq!(state.counters().rows_ingested, 4);
    }

    #[test]
    fn large_time_jump_is_single_close() {
        let mut state = EngineState::new(test_config());
        state.ingest("s", "1,0,5").unwrap();
        state.ingest("s", "1,1,6").unwrap();
        // Jump ~10^15 windows ahead: must close exactly one non-empty
        // window (and return promptly — O(non-empty), not O(Δt)).
        let out = state.ingest("s", "1,10000000000000000,7").unwrap();
        assert_eq!(out.windows_emitted, 1);
        assert_eq!(state.counters().windows_emitted, 1);
    }

    #[test]
    fn late_rows_counted_not_emitted() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        state.ingest("traffic", "19,50,1").unwrap(); // long before the open window
        assert_eq!(state.counters().late_rows, 1);
    }

    #[test]
    fn subscribe_fires_on_window_close() {
        let mut state = EngineState::new(test_config());
        let (id, stream, queue) = state.subscribe("SELECT * FROM traffic").unwrap();
        assert_eq!(stream, "traffic");
        assert!(queue.is_empty(), "no events before any window closes");
        ingest_window(&mut state, 100);
        let lines = queue.drain();
        assert!(
            lines[0].starts_with(&format!("EVENT {id} WINDOW 100 ROWS ")),
            "got: {:?}",
            lines[0]
        );
        assert!(lines.len() >= 2, "header plus at least one row");
        assert!(state.unsubscribe(id));
        assert!(!state.unsubscribe(id));
    }

    #[test]
    fn subscriber_limit_enforced() {
        let mut state = EngineState::new(test_config());
        for _ in 0..4 {
            state.subscribe("SELECT * FROM traffic").unwrap();
        }
        assert!(state.subscribe("SELECT * FROM traffic").is_err());
    }

    #[test]
    fn snapshot_restore_is_identical() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        state.ingest("traffic", "19,111,42").unwrap(); // buffered, window open
        let snap = state.to_snapshot();

        let mut restored = EngineState::new(test_config());
        restored.restore(snap.clone()).unwrap();
        assert_eq!(restored.to_snapshot(), snap, "restore is lossless");

        // Same subsequent ingest ⇒ same registered tuples, bit for bit.
        state.ingest("traffic", "19,120,9").unwrap();
        restored.ingest("traffic", "19,120,9").unwrap();
        let (_, a) = state.session().stream("traffic").unwrap();
        let (_, b) = restored.session().stream("traffic").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_rows_and_names_rejected() {
        let mut state = EngineState::new(test_config());
        assert!(state.ingest("s", "1,2").is_err());
        assert!(state.ingest("s", "x,2,3").is_err());
        assert!(state.ingest("s", "1,zz,3").is_err());
        assert!(state.ingest("s", "1,2,inf").is_err());
        assert!(state.ingest("9bad", "1,2,3").is_err());
        assert!(state.ingest("", "1,2,3").is_err());
        assert_eq!(state.counters().rows_ingested, 0);
    }

    #[test]
    fn query_records_stats() {
        let mut state = EngineState::new(test_config());
        ingest_window(&mut state, 100);
        let (_, tuples) = state.query("SELECT * FROM traffic").unwrap();
        assert_eq!(tuples.len(), 1);
        assert!(state.stats_lines().iter().any(|l| l.contains("last query:")));
        assert!(state.query("SELECT * FROM nosuch").is_err());
    }
}
