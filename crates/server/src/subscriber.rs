//! Bounded per-subscriber event queues (backpressure).
//!
//! Window-close events are pushed by whichever connection thread ingested
//! the closing observation; each subscriber's own connection thread drains
//! its queue on its next tick. A slow (or stalled) consumer must never
//! grow server memory without bound, so the queue has a hard capacity:
//! once full, new lines are **dropped, newest first**, and a counter
//! records how many. The next successful drain prepends a single
//! `DROPPED <n>` notice so the client knows its view has gaps — the same
//! contract as `pg` replication slots or Redis client-output-buffer
//! limits, chosen over disconnecting because continuous accuracy-aware
//! results are re-derivable from later windows.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded FIFO of protocol lines for one subscriber.
#[derive(Debug)]
pub struct SubscriberQueue {
    inner: Mutex<QueueInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct QueueInner {
    lines: VecDeque<String>,
    dropped: u64,
}

impl SubscriberQueue {
    /// Creates a queue holding at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(QueueInner::default()), capacity: capacity.max(1) }
    }

    /// The queue's capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues one line, dropping it (and counting the drop) if the queue
    /// is full. Returns whether the line was accepted.
    pub fn push(&self, line: String) -> bool {
        let mut inner = self.inner.lock().expect("subscriber queue poisoned");
        if inner.lines.len() >= self.capacity {
            inner.dropped += 1;
            false
        } else {
            inner.lines.push_back(line);
            true
        }
    }

    /// Enqueues a batch of lines; stops counting-in once full so an event
    /// block is cut off rather than interleaved.
    pub fn push_all(&self, lines: impl IntoIterator<Item = String>) {
        for line in lines {
            self.push(line);
        }
    }

    /// Takes every queued line. If drops occurred since the last drain, the
    /// first returned line is `DROPPED <n>` and the counter resets.
    pub fn drain(&self) -> Vec<String> {
        let mut inner = self.inner.lock().expect("subscriber queue poisoned");
        if inner.lines.is_empty() && inner.dropped == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(inner.lines.len() + 1);
        if inner.dropped > 0 {
            out.push(format!("DROPPED {}", inner.dropped));
            inner.dropped = 0;
        }
        out.extend(inner.lines.drain(..));
        out
    }

    /// Drains like [`SubscriberQueue::drain`] but appends each line (with
    /// a trailing `\n`) to `out` instead of allocating a vector — the
    /// fan-out path batches every queue's lines into one buffer and
    /// flushes it with a single write syscall per tick. Returns the
    /// number of lines appended. The `DROPPED <n>` gap notice keeps its
    /// exact semantics: emitted first, counter reset.
    pub fn drain_into(&self, out: &mut String) -> usize {
        let mut inner = self.inner.lock().expect("subscriber queue poisoned");
        if inner.lines.is_empty() && inner.dropped == 0 {
            return 0;
        }
        let mut n = 0;
        if inner.dropped > 0 {
            out.push_str("DROPPED ");
            out.push_str(&inner.dropped.to_string());
            out.push('\n');
            inner.dropped = 0;
            n += 1;
        }
        for line in inner.lines.drain(..) {
            out.push_str(&line);
            out.push('\n');
            n += 1;
        }
        n
    }

    /// Lines currently queued (for stats and tests).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("subscriber queue poisoned").lines.len()
    }

    /// Whether the queue holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops recorded since the last drain (for stats and tests).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("subscriber queue poisoned").dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_with_drop_notice() {
        let q = SubscriberQueue::new(3);
        for i in 0..10 {
            q.push(format!("line {i}"));
        }
        assert_eq!(q.len(), 3, "capacity is a hard bound");
        assert_eq!(q.dropped(), 7);
        let drained = q.drain();
        assert_eq!(drained[0], "DROPPED 7");
        assert_eq!(drained[1..], ["line 0", "line 1", "line 2"]);
        // Counter reset after the notice.
        assert_eq!(q.dropped(), 0);
        assert!(q.drain().is_empty());
    }

    #[test]
    fn drain_into_matches_drain_semantics() {
        let q = SubscriberQueue::new(3);
        for i in 0..10 {
            q.push(format!("line {i}"));
        }
        let mut buf = String::from("EVENT 1 WINDOW 0 ROWS 0\n");
        let n = q.drain_into(&mut buf);
        assert_eq!(n, 4, "DROPPED notice plus three lines");
        assert_eq!(buf, "EVENT 1 WINDOW 0 ROWS 0\nDROPPED 7\nline 0\nline 1\nline 2\n");
        assert_eq!(q.dropped(), 0, "gap counter reset exactly like drain()");
        let mut empty = String::new();
        assert_eq!(q.drain_into(&mut empty), 0);
        assert!(empty.is_empty(), "no output when nothing is queued");
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let q = SubscriberQueue::new(16);
        q.push_all(["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(q.drain(), ["a", "b", "c"]);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let q = SubscriberQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push("x".into()));
        assert!(!q.push("y".into()));
    }
}
