//! Integration tests for the accuracy-trajectory store — the PR's
//! acceptance proofs:
//!
//! 1. **Strict observability**: `QUERY` / `SUBSCRIBE` transcripts are
//!    byte-identical across history on/off × telemetry on/off × shard
//!    counts, with the sampler thread running.
//! 2. **Determinism**: with the sampler disabled, `HISTORY` replies are
//!    a pure function of the ingest script — two identical sessions
//!    produce byte-identical trajectories.
//! 3. **Surface agreement**: `HISTORY EXPORT` over the line protocol and
//!    `GET /history` over HTTP serve the same JSON; per-series HTTP
//!    slices agree with the `HISTORY <series>` verb.
//! 4. **HTTP robustness**: bad query parameters are 400s, unknown paths
//!    404 with the endpoint list, and the router preserves the exact
//!    response framing the scrapers rely on.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ausdb_learn::accuracy::DistKind;
use ausdb_learn::learner::LearnerConfig;
use ausdb_serve::server::{Server, ServerConfig, ServerHandle};
use ausdb_serve::state::EngineConfig;

const WINDOW: u64 = 10;

/// Serializes tests in this binary: accuracy points record *deltas* of
/// process-global engine counters (resamples, verdicts), so two
/// concurrently closing windows would inflate each other's points.
fn history_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn engine_config(shards: usize) -> EngineConfig {
    EngineConfig {
        learner: LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: WINDOW,
            min_observations: 2,
        },
        max_subscribers: 8,
        queue_cap: 64,
        shards,
    }
}

/// Starts a server with the retention layer configured explicitly.
/// `sample_ms = 0` keeps event-driven accuracy points but no sampler
/// thread (deterministic ticks); `history = false` disables recording
/// entirely.
fn start_server(shards: usize, history: bool, sample_ms: u64, http: bool) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: engine_config(shards),
        tick: Duration::from_millis(25),
        http_addr: http.then(|| "127.0.0.1:0".to_string()),
        history,
        history_sample_ms: Some(sample_ms),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// A tiny line-protocol client (the loopback test's shape).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut client = Self { stream, reader };
        assert_eq!(client.read_line(), "OK ausdb-serve 1 ready");
        client
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches(['\n', '\r']).to_string()
    }

    fn request(&mut self, line: &str) -> Vec<String> {
        self.send(line);
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") || first.starts_with("ERR") || first.starts_with("BYE") {
            return lines;
        }
        while !lines.last().unwrap().starts_with("END") {
            lines.push(self.read_line());
        }
        lines
    }
}

/// The loopback suite's fixed ingest script: two keys over two full
/// windows plus buffered leftovers in an open third window.
fn observation_rows() -> Vec<(i64, u64, f64)> {
    let mut rows = Vec::new();
    for w in 0..2u64 {
        let base = 100 + w * WINDOW;
        rows.push((19, base, 56.0 + w as f64));
        rows.push((19, base + 1, 38.5));
        rows.push((19, base + 3, 97.25));
        for i in 0..8u64 {
            rows.push((20, base + (i % WINDOW), 60.0 + (i as f64) * 1.5));
        }
    }
    rows.push((19, 120, 41.0));
    rows.push((20, 121, 62.5));
    rows
}

fn ingest_rows(client: &mut Client, rows: &[(i64, u64, f64)]) {
    for (key, ts, value) in rows {
        let reply = client.request(&format!("INGEST traffic {key},{ts},{value}"));
        assert!(reply[0].starts_with("OK INGESTED"), "got {reply:?}");
    }
}

/// Everything a subscriber + querier observes from one session.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Transcript {
    events: Vec<String>,
    query: Vec<String>,
}

/// One standing-query session: subscribe, replay the ingest script,
/// drain both window closes' events, then run a seeded bootstrap query.
fn session(handle: &ServerHandle) -> Transcript {
    let mut sub = Client::connect(handle);
    let reply = sub.request("SUBSCRIBE SELECT * FROM traffic");
    assert!(reply[0].starts_with("OK SUBSCRIBED 1"), "got {reply:?}");

    let mut producer = Client::connect(handle);
    ingest_rows(&mut producer, &observation_rows());

    // Both closes queued their events before the producer's last OK, so
    // they drain before the PONG below.
    sub.send("PING");
    let mut events = Vec::new();
    loop {
        let line = sub.read_line();
        if line == "OK PONG" {
            break;
        }
        events.push(line);
    }
    let query =
        sub.request("QUERY SELECT * FROM traffic WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200");
    Transcript { events, query }
}

#[test]
fn transcripts_byte_identical_across_history_telemetry_and_shards() {
    let _guard = history_lock();
    let mut baseline: Option<Transcript> = None;
    for (history, telemetry, shards) in
        [(true, true, 1), (true, false, 1), (true, true, 4), (false, true, 1), (false, false, 4)]
    {
        ausdb_obs::set_enabled(telemetry);
        // History-on sessions run the sampler at full speed to prove the
        // scrape thread never perturbs results either.
        let handle = start_server(shards, history, if history { 1 } else { 0 }, false);
        let got = session(&handle);
        handle.stop();
        assert!(!got.events.is_empty(), "two closes must emit events");
        assert!(got.query[0].starts_with("SCHEMA"), "got {:?}", got.query);
        match &baseline {
            None => baseline = Some(got),
            Some(want) => assert_eq!(
                &got, want,
                "transcript changed under history={history} telemetry={telemetry} \
                 shards={shards}"
            ),
        }
    }
    ausdb_obs::set_enabled(true);
}

/// Runs one sampler-less session and returns its full `HISTORY` surface:
/// the series listing, the accuracy trajectory, and the export dump.
fn history_surface(shards: usize) -> (Vec<String>, Vec<String>, Vec<String>) {
    let handle = start_server(shards, true, 0, false);
    let mut sub = Client::connect(&handle);
    assert!(sub.request("SUBSCRIBE SELECT * FROM traffic")[0].starts_with("OK SUBSCRIBED 1"));
    let mut producer = Client::connect(&handle);
    ingest_rows(&mut producer, &observation_rows());
    // Both windows are closed (their events were queued before the last
    // ingest OK), so the trajectory is complete.
    let list = producer.request("HISTORY");
    let series = producer.request("HISTORY ausdb_accuracy{query=\"1\"} LAST 2h");
    let export = producer.request("HISTORY EXPORT");
    handle.stop();
    (list, series, export)
}

#[test]
fn history_replies_are_deterministic_and_shard_invariant() {
    let _guard = history_lock();
    let (list, series, export) = history_surface(1);

    // No sampler ran, so the only series is the standing query's
    // accuracy trajectory: one point per closed window.
    assert_eq!(
        list,
        vec![
            "SERIES ausdb_accuracy{query=\"1\"} kind=accuracy points=2".to_string(),
            "END 1".to_string()
        ]
    );
    assert_eq!(series[0], "SERIES ausdb_accuracy{query=\"1\"} kind=accuracy step=0 points=2");
    assert_eq!(series.len(), 4, "header + 2 points + END: {series:?}");
    assert_eq!(series[3], "END 2");
    // Points are keyed by event-time window start; the plain SELECT *
    // evaluation spends no bootstrap resamples and renders no verdicts,
    // and no rows were late.
    for (line, start) in [(&series[1], 100), (&series[2], 110)] {
        assert!(line.starts_with(&format!("POINT t={start} ci_width=")), "got {line}");
        assert!(line.contains(" df_n=8 "), "got {line}");
        assert!(line.contains(" resamples=0 "), "got {line}");
        assert!(line.contains(" verdicts_true=0 "), "got {line}");
        assert!(line.contains(" rows=2 "), "got {line}");
        assert!(line.ends_with(" late_rows=0"), "got {line}");
    }
    assert!(export.iter().any(|l| l.contains("\"version\": 1")), "{export:?}");

    // Determinism: an identical session replays to byte-identical
    // replies; sharding the engine changes none of them.
    assert_eq!(history_surface(1), (list.clone(), series.clone(), export.clone()));
    assert_eq!(history_surface(4), (list, series, export));
}

#[test]
fn history_disabled_store_stays_empty_and_errors_are_structured() {
    let _guard = history_lock();
    let handle = start_server(1, false, 0, false);
    let mut sub = Client::connect(&handle);
    assert!(sub.request("SUBSCRIBE SELECT * FROM traffic")[0].starts_with("OK SUBSCRIBED 1"));
    let mut producer = Client::connect(&handle);
    ingest_rows(&mut producer, &observation_rows());
    assert_eq!(producer.request("HISTORY"), vec!["END 0".to_string()]);
    assert!(producer.request("HISTORY nope")[0].starts_with("ERR history: unknown series"));
    assert!(producer.request("HISTORY s LAST soon")[0].starts_with("ERR bad duration"));
    assert_eq!(producer.request("PING")[0], "OK PONG", "the connection survives every error");
    handle.stop();
}

/// Minimal GET over a raw socket: (status line, header lines, body).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body separator");
    let mut lines = head.lines();
    let status = lines.next().unwrap_or("").to_string();
    (status, lines.map(str::to_string).collect(), body.to_string())
}

#[test]
fn http_history_agrees_with_the_protocol_verb() {
    let _guard = history_lock();
    let handle = start_server(1, true, 0, true);
    let http = handle.http_addr().expect("http listener bound");
    let mut sub = Client::connect(&handle);
    assert!(sub.request("SUBSCRIBE SELECT * FROM traffic")[0].starts_with("OK SUBSCRIBED 1"));
    let mut producer = Client::connect(&handle);
    ingest_rows(&mut producer, &observation_rows());

    // The consolidated dump is byte-identical on both surfaces (the verb
    // splits it into lines and appends END).
    let export = producer.request("HISTORY EXPORT");
    let (status, headers, body) = http_get(http, "/history");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let content_type =
        headers.iter().find_map(|h| h.strip_prefix("Content-Type: ")).expect("Content-Type");
    assert_eq!(content_type, "application/json");
    let content_length: usize = headers
        .iter()
        .find_map(|h| h.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .parse()
        .unwrap();
    assert_eq!(content_length, body.len());
    let verb_json: Vec<&str> = export[..export.len() - 1].iter().map(String::as_str).collect();
    assert_eq!(body.lines().collect::<Vec<_>>(), verb_json, "verb and HTTP dumps agree");

    // A per-series slice carries the same points the verb renders
    // (query= percent-encoded; the router decodes it).
    let series = producer.request("HISTORY ausdb_accuracy{query=\"1\"}");
    let (status, _, body) =
        http_get(http, "/history?series=ausdb_accuracy%7Bquery%3D%221%22%7D&last=2h");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.starts_with("{\"series\":\"ausdb_accuracy{query=\\\"1\\\"}\""), "got {body}");
    let n_points = body.matches("{\"t\":").count();
    assert_eq!(n_points, series.len() - 2, "same point count as the verb reply");
    assert!(body.contains("\"t\":100") && body.contains("\"t\":110"), "got {body}");

    // Bad query parameters are 400s; unknown paths list every endpoint.
    let (status, _, body) = http_get(http, "/history?series=nope");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.starts_with("unknown series 'nope'"), "got {body}");
    let (status, _, body) = http_get(http, "/history?series=x&last=soon");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.starts_with("bad last 'soon'"), "got {body}");
    let (status, _, body) = http_get(http, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert_eq!(body, "try GET /metrics, /healthz, /readyz, or /history\n");
    handle.stop();
}

#[test]
fn sampler_feeds_metric_series_into_the_store() {
    let _guard = history_lock();
    ausdb_obs::set_enabled(true);
    let handle = start_server(1, true, 10, false);
    let mut client = Client::connect(&handle);
    ingest_rows(&mut client, &observation_rows());

    // The 10ms sampler scrapes the merged registries; within the
    // deadline the ingest counter series must appear with its full
    // delta. No LAST clause → the whole finest tier, open bucket
    // included; storage is sparse (the counter stops moving once ingest
    // is done), so the ring never wraps and the total is stable.
    let deadline = Instant::now() + Duration::from_secs(10);
    let series = "ausdb_rows_ingested_total{stream=\"traffic\"}";
    loop {
        let reply = client.request(&format!("HISTORY {series}"));
        if reply[0].starts_with("ERR") {
            assert!(Instant::now() < deadline, "sampler never recorded {series}: {reply:?}");
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        assert!(reply[0].starts_with(&format!("SERIES {series} kind=counter")), "got {reply:?}");
        let total: u64 = reply[1..reply.len() - 1]
            .iter()
            .map(|l| {
                l.rsplit_once("delta=")
                    .and_then(|(_, d)| d.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("malformed point line {l}"))
            })
            .sum();
        if total == observation_rows().len() as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "deltas never summed to the ingest count: {reply:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Step regrouping answers at the coarser resolution.
    let reply = client.request(&format!("HISTORY {series} STEP 10s"));
    assert!(reply[0].contains(" step=10 "), "got {:?}", reply[0]);
    handle.stop();
}
