//! Loopback integration tests — the PR's three acceptance proofs:
//!
//! 1. **Determinism**: with the same seed, a server-side `QUERY` returns
//!    results bit-identical to the in-process `run_sql` path (proven via
//!    the injective row renderer: equal lines ⇔ equal bits).
//! 2. **Kill-and-restore**: stopping a server writes a snapshot; a new
//!    server on the same path resumes with identical learner state —
//!    including *buffered, not-yet-emitted* observations — so subsequent
//!    windows are bit-identical too.
//! 3. **Backpressure**: a stalled subscriber's queue stays bounded; gaps
//!    are reported as `DROPPED <n>`, memory never grows without limit.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ausdb_learn::accuracy::DistKind;
use ausdb_learn::learner::LearnerConfig;
use ausdb_serve::render::{render_rows, render_schema};
use ausdb_serve::server::{Server, ServerConfig, ServerHandle};
use ausdb_serve::state::{EngineConfig, EngineState};
use ausdb_sql::planner::run_sql;

const WINDOW: u64 = 10;

fn engine_config() -> EngineConfig {
    EngineConfig {
        learner: LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: WINDOW,
            min_observations: 2,
        },
        max_subscribers: 8,
        queue_cap: 6,
        shards: 1,
    }
}

fn start_server(snapshot: Option<std::path::PathBuf>, tick: Duration) -> ServerHandle {
    start_sharded_server(snapshot, tick, 1)
}

fn start_sharded_server(
    snapshot: Option<std::path::PathBuf>,
    tick: Duration,
    shards: usize,
) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        snapshot_path: snapshot,
        engine: EngineConfig { shards, ..engine_config() },
        tick,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// A tiny line-protocol client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut client = Self { stream, reader };
        assert_eq!(client.read_line(), "OK ausdb-serve 1 ready");
        client
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches(['\n', '\r']).to_string()
    }

    /// Sends one request and reads lines until (and including) the
    /// block terminator (`END ...`) or a single-line `OK`/`ERR` reply.
    fn request(&mut self, line: &str) -> Vec<String> {
        self.send(line);
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") || first.starts_with("ERR") || first.starts_with("BYE") {
            return lines;
        }
        while !lines.last().unwrap().starts_with("END") {
            lines.push(self.read_line());
        }
        lines
    }
}

/// Raw observation rows shared by server and in-process paths. Two keys
/// with different sample sizes (the paper's Example 1 shape) across two
/// full windows, plus buffered leftovers in a third, open window.
fn observation_rows() -> Vec<(i64, u64, f64)> {
    let mut rows = Vec::new();
    for w in 0..2u64 {
        let base = 100 + w * WINDOW;
        rows.push((19, base, 56.0 + w as f64));
        rows.push((19, base + 1, 38.5));
        rows.push((19, base + 3, 97.25));
        for i in 0..8u64 {
            rows.push((20, base + (i % WINDOW), 60.0 + (i as f64) * 1.5));
        }
    }
    // Open third window: buffered only, not emitted.
    rows.push((19, 120, 41.0));
    rows.push((20, 121, 62.5));
    rows
}

fn ingest_rows_via(client: &mut Client, rows: &[(i64, u64, f64)]) {
    for (key, ts, value) in rows {
        let reply = client.request(&format!("INGEST traffic {key},{ts},{value}"));
        assert!(reply[0].starts_with("OK INGESTED"), "got {reply:?}");
    }
}

fn ingest_rows_inproc(state: &mut EngineState, rows: &[(i64, u64, f64)]) {
    for (key, ts, value) in rows {
        state.ingest("traffic", &format!("{key},{ts},{value}")).unwrap();
    }
}

/// Renders the in-process `run_sql` result exactly as the server would.
fn expected_reply(state: &EngineState, sql: &str) -> Vec<String> {
    let (schema, tuples) = run_sql(state.session(), sql).expect("in-process query");
    let mut lines = vec![render_schema(&schema)];
    lines.extend(render_rows(&tuples));
    lines.push(format!("END {}", tuples.len()));
    lines
}

#[test]
fn server_query_bit_identical_to_run_sql() {
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    let rows = observation_rows();
    ingest_rows_via(&mut client, &rows);

    let mut state = EngineState::new(engine_config());
    ingest_rows_inproc(&mut state, &rows);

    // Same default seed (QueryConfig::default) on both sides; BOOTSTRAP
    // exercises the seeded Monte-Carlo path, so bit-identity is a real
    // determinism statement, not just formatting luck.
    for sql in [
        "SELECT * FROM traffic",
        "SELECT key, value FROM traffic WHERE value > 50 PROB 0.5",
        "SELECT * FROM traffic WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
    ] {
        let got = client.request(&format!("QUERY {sql}"));
        let want = expected_reply(&state, sql);
        assert_eq!(got, want, "server vs in-process mismatch for {sql}");
    }
    handle.stop();
}

#[test]
fn kill_and_restore_resumes_identical_state() {
    let dir = std::env::temp_dir().join(format!("ausdb_loopback_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("state.snap");
    let rows = observation_rows();
    let sql = "SELECT * FROM traffic";

    // Phase A: ingest everything (third window still open), then SHUTDOWN
    // — which must write the final snapshot and join all threads.
    let before;
    {
        let handle = start_server(Some(snap.clone()), Duration::from_millis(25));
        let mut client = Client::connect(&handle);
        ingest_rows_via(&mut client, &rows);
        before = client.request(&format!("QUERY {sql}"));
        let reply = client.request("SHUTDOWN");
        assert_eq!(reply[0], "OK shutting down");
        handle.join(); // SHUTDOWN came from the client; join must return
    }
    assert!(snap.exists(), "shutdown wrote the final snapshot");

    // Phase B: a fresh server on the same snapshot resumes identically.
    let handle = start_server(Some(snap.clone()), Duration::from_millis(25));
    assert_eq!(handle.restored_streams(), 1);
    let mut client = Client::connect(&handle);
    assert_eq!(
        client.request(&format!("QUERY {sql}")),
        before,
        "registered window content restored bit-identically"
    );

    // The *buffered* observations were restored too: closing the third
    // window must match an in-process state that saw all rows in one life.
    let closing = [(19i64, 131u64, 44.0f64), (20, 132, 63.0)];
    ingest_rows_via(&mut client, &closing);
    let mut state = EngineState::new(engine_config());
    ingest_rows_inproc(&mut state, &rows);
    ingest_rows_inproc(&mut state, &closing);
    assert_eq!(
        client.request(&format!("QUERY {sql}")),
        expected_reply(&state, sql),
        "post-restore window close is bit-identical to an uninterrupted run"
    );
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stalled_subscriber_bounds_memory_with_drop_notices() {
    // Long tick: the subscriber's connection thread drains at most once
    // per second, so a fast pipelined burst must overflow the cap-6 queue.
    let handle = start_server(None, Duration::from_millis(1000));
    let mut subscriber = Client::connect(&handle);
    let reply = subscriber.request("SUBSCRIBE SELECT * FROM traffic");
    assert!(reply[0].starts_with("OK SUBSCRIBED 1"), "got {reply:?}");

    // Stall the subscriber (no reads) while another client closes many
    // windows in one pipelined write.
    let mut producer = Client::connect(&handle);
    let mut burst = String::new();
    for w in 0..40u64 {
        let base = 100 + w * WINDOW;
        burst.push_str(&format!("INGEST traffic 19,{base},50\n"));
        burst.push_str(&format!("INGEST traffic 19,{},60\n", base + 1));
    }
    producer.stream.write_all(burst.as_bytes()).unwrap();
    for _ in 0..80 {
        let line = producer.read_line();
        assert!(line.starts_with("OK INGESTED"), "got {line}");
    }

    // 39 closed windows × 2 lines each ≫ queue cap 6: the subscriber must
    // see a DROPPED notice, and the total delivered event lines must
    // respect the bound (cap lines per drain cycle).
    let mut saw_dropped = false;
    let mut event_lines = 0usize;
    subscriber.send("PING");
    loop {
        let line = subscriber.read_line();
        if line.starts_with("DROPPED ") {
            let n: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert!(n > 0);
            saw_dropped = true;
        } else if line.starts_with("EVENT") || line.starts_with("ROW") {
            event_lines += 1;
        } else if line == "OK PONG" {
            break;
        } else {
            panic!("unexpected line: {line}");
        }
    }
    assert!(saw_dropped, "queue overflow must surface as DROPPED <n>");
    assert!(
        event_lines <= 2 * engine_config().queue_cap,
        "delivered {event_lines} lines for a cap of {}",
        engine_config().queue_cap
    );
    handle.stop();
}

#[test]
fn graceful_shutdown_notifies_connected_clients() {
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    assert_eq!(client.request("PING")[0], "OK PONG");
    handle.shutdown();
    // The connection loop notices the flag within a tick and says BYE.
    let line = client.read_line();
    assert_eq!(line, "BYE server shutting down");
    handle.join();
}

/// Serializes tests that flip or depend on the process-wide telemetry
/// enable flag. Counters are unaffected by the flag, but histogram and
/// journal assertions need it held steady.
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Splits a `METRICS` body into `series -> value` samples and
/// `family -> kind` TYPE declarations, asserting every line is either a
/// `# HELP`/`# TYPE` comment or a sample with a parsable float value.
fn parse_exposition(
    body: &[String],
) -> (std::collections::BTreeMap<String, f64>, std::collections::BTreeMap<String, String>) {
    let mut samples = std::collections::BTreeMap::new();
    let mut types = std::collections::BTreeMap::new();
    for line in body {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            types.insert(it.next().unwrap().to_string(), it.next().unwrap().to_string());
        } else if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "unexpected comment line: {line}");
        } else {
            let (series, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("malformed sample line: {line}"));
            let value: f64 =
                value.parse().unwrap_or_else(|_| panic!("unparsable sample value: {line}"));
            samples.insert(series.to_string(), value);
        }
    }
    (samples, types)
}

#[test]
fn metrics_exposition_is_valid_and_cross_checks() {
    let _guard = telemetry_lock();
    ausdb_obs::set_enabled(true);
    // Engine-wide counters are process-global and shared with concurrent
    // tests, so they get sandwich (before <= reported <= after) asserts;
    // the per-server registry values are exact.
    let resamples_before = ausdb_engine::obs::telemetry::global().bootstrap_resamples.get();

    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    let rows = observation_rows();
    ingest_rows_via(&mut client, &rows);
    // GROUP BY + AVG computes a result distribution per key, which the
    // BOOTSTRAP accuracy mode resamples (r = m/n per group) — so this
    // query must move the engine-wide resample counter.
    let reply = client.request(
        "QUERY SELECT key, AVG(value) FROM traffic GROUP BY key \
         WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
    );
    assert!(reply[0].starts_with("SCHEMA"), "got {reply:?}");
    // The queue-depth gauge family is per-stream now, so its series only
    // exist once a stream has (or had) a subscriber.
    let sub = client.request("SUBSCRIBE SELECT * FROM traffic");
    assert!(sub[0].starts_with("OK SUBSCRIBED"), "got {sub:?}");

    let metrics = client.request("METRICS");
    assert_eq!(metrics.last().unwrap(), "END");
    let body = &metrics[..metrics.len() - 1];
    let (samples, types) = parse_exposition(body);
    let resamples_after = ausdb_engine::obs::telemetry::global().bootstrap_resamples.get();

    for (family, kind) in [
        ("ausdb_query_latency_seconds", "histogram"),
        ("ausdb_ci_relative_width", "histogram"),
        ("ausdb_sig_verdicts_total", "counter"),
        ("ausdb_subscriber_queue_depth", "gauge"),
        ("ausdb_rows_ingested_total", "counter"),
        ("ausdb_bootstrap_resamples_total", "counter"),
    ] {
        assert_eq!(types.get(family).map(String::as_str), Some(kind), "TYPE of {family}");
    }

    // Exact cross-checks against what this client actually did (the
    // server owns a fresh per-instance registry).
    assert_eq!(samples["ausdb_rows_ingested_total{stream=\"traffic\"}"], rows.len() as f64);
    assert_eq!(samples["ausdb_late_rows_total{stream=\"traffic\"}"], 0.0);
    assert_eq!(samples["ausdb_windows_emitted_total{stream=\"traffic\"}"], 2.0);
    assert_eq!(samples["ausdb_queries_total"], 1.0);
    assert_eq!(samples["ausdb_query_latency_seconds_count"], 1.0);

    // Sandwich on the shared engine-wide resample counter (other tests in
    // this binary may also bootstrap concurrently, so bounds, not
    // equality): our query must have moved it.
    let reported = samples["ausdb_bootstrap_resamples_total"] as u64;
    assert!(
        resamples_before < reported && reported <= resamples_after,
        "resamples: before={resamples_before} reported={reported} after={resamples_after}"
    );

    // Histogram buckets are cumulative: counts non-decreasing in `le`,
    // with the +Inf bucket equal to `_count`.
    let buckets: Vec<f64> = body
        .iter()
        .filter(|l| l.starts_with("ausdb_query_latency_seconds_bucket{le="))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(buckets.len() > 2, "expected bucket series, got {buckets:?}");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "non-cumulative buckets: {buckets:?}");
    assert_eq!(*buckets.last().unwrap(), samples["ausdb_query_latency_seconds_count"]);
    assert!(
        body.iter().any(|l| l.starts_with("ausdb_query_latency_seconds_bucket{le=\"+Inf\"}")),
        "missing +Inf bucket"
    );
    handle.stop();
}

#[test]
fn trace_drains_recent_journal_entries() {
    let _guard = telemetry_lock();
    ausdb_obs::set_enabled(true);
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    ingest_rows_via(&mut client, &observation_rows());
    let reply = client.request("QUERY SELECT * FROM traffic");
    assert!(reply[0].starts_with("SCHEMA"), "got {reply:?}");

    let trace = client.request("TRACE 5");
    // Header first: `TRACE dropped=<ring evictions>`.
    assert!(trace[0].starts_with("TRACE dropped="), "missing header: {trace:?}");
    let dropped: u64 =
        trace[0].strip_prefix("TRACE dropped=").unwrap().parse().expect("numeric dropped count");
    let _ = dropped; // any u64 is valid; other tests may have churned the ring
    let last = trace.last().unwrap();
    let n: usize = last.strip_prefix("END ").expect("END <n>").parse().unwrap();
    assert_eq!(n, trace.len() - 2, "END count matches entry lines");
    assert!((1..=5).contains(&n), "expected 1..=5 entries, got {trace:?}");
    for line in &trace[1..=n] {
        // `TRACE #<seq> +<micros>us <LEVEL> <span>: <message>`
        assert!(line.starts_with("TRACE #"), "malformed entry: {line}");
        assert!(line.contains("us "), "missing relative timestamp: {line}");
    }
    // Our ingest closed windows and ran a query just now; with only this
    // client talking to the journal since, the tail must include one.
    assert!(
        trace[1..=n].iter().any(|l| l.contains(" query: ") || l.contains(" window_close: ")),
        "expected a query/window_close span in {trace:?}"
    );
    handle.stop();
}

#[test]
fn telemetry_flag_does_not_affect_results() {
    let _guard = telemetry_lock();
    let rows = observation_rows();
    let sql = "SELECT * FROM traffic WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200";

    ausdb_obs::set_enabled(true);
    let mut on = EngineState::new(engine_config());
    ingest_rows_inproc(&mut on, &rows);
    let with_telemetry = expected_reply(&on, sql);

    ausdb_obs::set_enabled(false);
    let mut off = EngineState::new(engine_config());
    ingest_rows_inproc(&mut off, &rows);
    let without_telemetry = expected_reply(&off, sql);
    ausdb_obs::set_enabled(true);

    assert!(with_telemetry.len() > 2, "query returned rows: {with_telemetry:?}");
    assert_eq!(with_telemetry, without_telemetry, "telemetry must be purely observational");
}

#[test]
fn help_lists_every_verb() {
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    let reply = client.request("HELP");
    assert_eq!(reply.last().unwrap(), "END");
    let body = &reply[..reply.len() - 1];
    for verb in [
        "INGEST",
        "INGESTB",
        "QUERY",
        "SUBSCRIBE",
        "UNSUBSCRIBE",
        "STATS",
        "METRICS",
        "TRACE",
        "TRACEX",
        "SNAPSHOT",
        "RESTORE",
        "WALSTAT",
        "REPLICATE",
        "PROMOTE",
        "HEALTH",
        "SLO",
        "HELP",
        "PING",
        "SHUTDOWN",
    ] {
        assert!(
            body.iter().any(|l| l.starts_with(verb) && l.contains('—')),
            "missing usage line for {verb} in {body:?}"
        );
    }
    handle.stop();
}

#[test]
fn explain_over_the_wire_returns_plan_lines() {
    let _guard = telemetry_lock();
    ausdb_obs::set_enabled(true);
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    ingest_rows_via(&mut client, &observation_rows());

    let reply = client.request("QUERY EXPLAIN SELECT * FROM traffic WHERE value > 50");
    assert!(reply.last().unwrap().starts_with("END "), "got {reply:?}");
    let body = &reply[..reply.len() - 1];
    assert!(!body.is_empty() && body.iter().all(|l| l.starts_with("PLAN ")), "got {body:?}");
    assert!(body.iter().any(|l| l.contains("Scan [traffic]")), "got {body:?}");
    assert!(body.iter().any(|l| l.contains("Filter")), "got {body:?}");

    // The ANALYZE form executes and annotates with observed counters,
    // accuracy attributes, and timing.
    let reply = client.request(
        "QUERY EXPLAIN ANALYZE SELECT * FROM traffic \
         WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
    );
    let body = &reply[..reply.len() - 1];
    assert!(body.iter().all(|l| l.starts_with("PLAN ")), "got {body:?}");
    assert!(body.iter().any(|l| l.contains("engine:")), "got {body:?}");
    assert!(body.iter().any(|l| l.contains("total:")), "got {body:?}");
    handle.stop();
}

#[test]
fn tracex_exports_chrome_trace_json() {
    let _guard = telemetry_lock();
    ausdb_obs::set_enabled(true);
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    ingest_rows_via(&mut client, &observation_rows());
    let reply = client.request("QUERY SELECT * FROM traffic");
    assert!(reply[0].starts_with("SCHEMA"), "got {reply:?}");

    let reply = client.request("TRACEX");
    let n: usize = reply.last().unwrap().strip_prefix("END ").expect("END <n>").parse().unwrap();
    assert!(n >= 1, "the query above must have left a trace in the ring: {reply:?}");
    let body = &reply[..reply.len() - 1];
    assert_eq!(body.first().map(String::as_str), Some("["));
    assert_eq!(body.last().map(String::as_str), Some("]"));
    assert!(
        body.iter().any(|l| l.contains("\"ph\":\"X\"") && l.contains("query traffic")),
        "expected a root query span event in {body:?}"
    );
    handle.stop();
}

#[test]
fn http_metrics_scrape_matches_protocol_metrics() {
    let _guard = telemetry_lock();
    ausdb_obs::set_enabled(true);
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        snapshot_path: None,
        engine: engine_config(),
        tick: Duration::from_millis(25),
        http_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let http = handle.http_addr().expect("http listener bound");
    let mut client = Client::connect(&handle);
    ingest_rows_via(&mut client, &observation_rows());
    let reply = client.request("QUERY SELECT * FROM traffic");
    assert!(reply[0].starts_with("SCHEMA"), "got {reply:?}");

    let (status, headers, body) = http_get(http, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let content_type =
        headers.iter().find_map(|h| h.strip_prefix("Content-Type: ")).expect("Content-Type header");
    assert_eq!(content_type, "text/plain; version=0.0.4; charset=utf-8");
    let content_length: usize = headers
        .iter()
        .find_map(|h| h.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .unwrap();
    assert_eq!(content_length, body.len(), "Content-Length matches the body");

    // The body is the METRICS reply minus the END terminator. Values of
    // process-global engine counters can move between the two requests
    // (other tests in this binary bootstrap concurrently), so the
    // comparison is: identical series/comment structure, byte-identical
    // per-instance sample lines.
    let metrics = client.request("METRICS");
    assert_eq!(metrics.last().unwrap(), "END");
    let proto_body = &metrics[..metrics.len() - 1];
    let http_lines: Vec<&str> = body.lines().collect();
    assert_eq!(http_lines.len(), proto_body.len(), "same line count");
    let series_name = |l: &str| l.split([' ', '{']).next().unwrap_or("").to_string();
    for (h, p) in http_lines.iter().zip(proto_body) {
        assert_eq!(series_name(h), series_name(p), "same series order: {h} vs {p}");
    }
    for prefix in
        ["ausdb_rows_ingested_total", "ausdb_windows_emitted_total", "ausdb_queries_total"]
    {
        let from_http: Vec<&&str> = http_lines.iter().filter(|l| l.starts_with(prefix)).collect();
        assert!(!from_http.is_empty(), "HTTP body has {prefix}");
        for line in from_http {
            assert!(proto_body.iter().any(|p| p == *line), "METRICS lacks line {line}");
        }
    }

    // Health endpoints: a primary is live and ready from startup, and
    // both answer JSON with per-probe detail.
    for target in ["/healthz", "/readyz"] {
        let (status, headers, body) = http_get(http, target);
        assert_eq!(status, "HTTP/1.1 200 OK", "{target}");
        let content_type = headers
            .iter()
            .find_map(|h| h.strip_prefix("Content-Type: "))
            .expect("Content-Type header");
        assert_eq!(content_type, "application/json", "{target}");
        assert!(body.starts_with("{\"status\":\"ok\",\"probes\":["), "{target} body: {body}");
        assert!(body.contains("\"name\":\"process\""), "{target} body: {body}");
    }
    // /readyz evaluates the bootstrap probe too; /healthz does not.
    assert!(http_get(http, "/readyz").2.contains("\"name\":\"bootstrap\""));
    assert!(!http_get(http, "/healthz").2.contains("\"name\":\"bootstrap\""));

    // Other targets 404; non-GET 405; the TCP protocol side still works.
    let (status, _, _) = http_get(http, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert_eq!(client.request("PING")[0], "OK PONG");
    handle.stop();
}

#[test]
fn health_verb_reports_role_streams_and_readiness() {
    let _guard = telemetry_lock();
    ausdb_obs::set_enabled(true);
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    ingest_rows_via(&mut client, &observation_rows());

    let reply = client.request("HEALTH");
    let head = &reply[0];
    assert!(head.starts_with("HEALTH role=primary ready=true uptime_us="), "got {head}");
    assert!(head.contains(" wal=off "), "got {head}");
    assert!(head.contains(" repl_lag=0 "), "got {head}");
    assert!(head.contains(" streams=1 "), "got {head}");
    assert!(head.contains(" subscribers=0 "), "got {head}");
    assert!(head.ends_with(" slo_targets=0 slo_violations=0"), "got {head}");
    assert_eq!(reply.last().unwrap(), "END 1");
    // Watermark 121 = the open third window's newest row; two rows are
    // buffered there, and telemetry-on means the ingest age is a number.
    let stream_line = &reply[1];
    assert!(stream_line.starts_with("STREAM traffic watermark=121 age_us="), "got {stream_line}");
    assert!(stream_line.ends_with(" buffered=2"), "got {stream_line}");
    assert!(!stream_line.contains("age_us=-"), "telemetry on must report an age: {stream_line}");
    handle.stop();

    // With telemetry off no wall clocks are read, so the age is `-` —
    // but the watermark (pure event time) still advances.
    ausdb_obs::set_enabled(false);
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    ingest_rows_via(&mut client, &observation_rows());
    let reply = client.request("HEALTH");
    assert!(
        reply[1].starts_with("STREAM traffic watermark=121 age_us=- buffered=2"),
        "got {:?}",
        reply[1]
    );
    ausdb_obs::set_enabled(true);
    handle.stop();
}

/// Everything a client observes from one SLO-watchdog session.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SloRun {
    events: Vec<String>,
    slo_list: Vec<String>,
    violations: String,
    query: Vec<String>,
}

/// One SLO-watchdog session: subscribe, arm an impossible-to-meet CI
/// width target, close two windows, and report everything observable —
/// the subscriber's event/notice lines, the `SLO LIST` reply, the
/// violation counter sample, and the full query reply.
fn slo_session(shards: usize) -> SloRun {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        snapshot_path: None,
        // Room for both windows' events + notices without DROPPED races.
        engine: EngineConfig { shards, queue_cap: 64, ..engine_config() },
        tick: Duration::from_millis(25),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let mut sub = Client::connect(&handle);
    let reply = sub.request("SUBSCRIBE SELECT * FROM traffic");
    assert!(reply[0].starts_with("OK SUBSCRIBED 1"), "got {reply:?}");
    let reply = sub.request("SLO SET 1 0.000000001");
    assert_eq!(reply[0], "OK SLO 1 target=0.000000001");

    let mut producer = Client::connect(&handle);
    ingest_rows_via(&mut producer, &observation_rows());

    // Both window closes queued their events (and notices) before the
    // producer's last OK, so they drain before the PONG below.
    sub.send("PING");
    let mut events = Vec::new();
    loop {
        let line = sub.read_line();
        if line == "OK PONG" {
            break;
        }
        events.push(line);
    }
    let slo_list = sub.request("SLO LIST");
    let metrics = sub.request("METRICS");
    let violations = metrics
        .iter()
        .find(|l| l.starts_with("ausdb_accuracy_slo_violations_total{query=\"1\"}"))
        .expect("violation counter series")
        .clone();
    let query =
        sub.request("QUERY SELECT * FROM traffic WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200");
    handle.stop();
    SloRun { events, slo_list, violations, query }
}

#[test]
fn slo_watchdog_fires_identically_across_telemetry_and_shards() {
    let _guard = telemetry_lock();
    let mut baseline: Option<SloRun> = None;
    for (telemetry, shards) in [(true, 1), (false, 1), (true, 4), (false, 4)] {
        ausdb_obs::set_enabled(telemetry);
        let got = slo_session(shards);
        let SloRun { events, slo_list, violations, query } = &got;

        // Two windows closed, each violating the 1e-9 target: an
        // ACCURACY notice follows each EVENT block.
        let notices: Vec<&String> =
            events.iter().filter(|l| l.starts_with("ACCURACY 1 width=")).collect();
        assert_eq!(notices.len(), 2, "one notice per violated close: {events:?}");
        for notice in &notices {
            assert!(notice.ends_with(" target=0.000000001"), "got {notice}");
        }
        assert!(events.iter().any(|l| l.starts_with("EVENT")), "got {events:?}");
        assert_eq!(violations.as_str(), "ausdb_accuracy_slo_violations_total{query=\"1\"} 2");
        assert_eq!(slo_list.len(), 2, "one SLO line + END: {slo_list:?}");
        assert!(
            slo_list[0].starts_with("SLO 1 stream=traffic target=0.000000001 violations=2"),
            "got {slo_list:?}"
        );
        assert!(query[0].starts_with("SCHEMA"), "got {query:?}");

        // The watchdog is observational: every byte the client sees is
        // identical with telemetry on or off, sharded or not.
        match &baseline {
            None => baseline = Some(got.clone()),
            Some(want) => assert_eq!(
                &got, want,
                "SLO watchdog output differs (telemetry={telemetry}, shards={shards})"
            ),
        }
    }
    ausdb_obs::set_enabled(true);
}

/// Minimal HTTP/1.0-style GET over a raw socket: returns (status line,
/// header lines, body bytes as text).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body separator");
    let mut lines = head.lines();
    let status = lines.next().unwrap_or("").to_string();
    (status, lines.map(str::to_string).collect(), body.to_string())
}

#[test]
fn protocol_errors_are_structured() {
    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);
    assert!(client.request("FROB")[0].starts_with("ERR unknown command"));
    assert!(client.request("INGEST traffic nonsense")[0].starts_with("ERR ingest:"));
    assert!(client.request("QUERY SELECT * FROM missing")[0].starts_with("ERR query:"));
    assert!(client.request("SNAPSHOT")[0].starts_with("ERR no snapshot path"));
    assert!(client.request("UNSUBSCRIBE 99")[0].starts_with("ERR subscription"));
    // The connection survives every error.
    assert_eq!(client.request("PING")[0], "OK PONG");
    handle.stop();
}

/// The binary batch path must be observably identical to line-at-a-time
/// ingest: same `OK INGESTED` totals, same query results, same windows.
#[test]
fn ingestb_batch_matches_line_ingest() {
    use ausdb_learn::learner::RawObservation;
    use ausdb_serve::client::BatchClient;

    let handle = start_server(None, Duration::from_millis(25));
    let rows = observation_rows();

    let mut batch = BatchClient::connect(&handle.addr().to_string()).expect("batch connect");
    let raw: Vec<RawObservation> =
        rows.iter().map(|&(key, ts, value)| RawObservation::new(key, ts, value)).collect();
    let outcome = batch.ingest_batch("traffic", &raw).expect("batch ingest");
    assert_eq!(outcome.accepted, rows.len() as u64);
    assert_eq!(outcome.late, 0);
    assert_eq!(outcome.windows_emitted, 2, "two full windows close during the batch");

    // Bit-identical to the in-process line path for every query shape.
    let mut state = EngineState::new(engine_config());
    ingest_rows_inproc(&mut state, &rows);
    let mut client = Client::connect(&handle);
    for sql in [
        "SELECT * FROM traffic",
        "SELECT * FROM traffic WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
    ] {
        assert_eq!(
            client.request(&format!("QUERY {sql}")),
            expected_reply(&state, sql),
            "batch-ingested server vs in-process mismatch for {sql}"
        );
    }

    // The same connection still speaks the line protocol afterwards.
    assert_eq!(batch.request_line("PING").unwrap(), "OK PONG");
    handle.stop();
}

/// Frame-level protocol errors: a corrupt frame is rejected without
/// killing the connection; an oversize announcement closes it.
#[test]
fn ingestb_frame_errors_are_structured() {
    use ausdb_model::codec::encode_ingest_frame;

    let handle = start_server(None, Duration::from_millis(25));
    let mut client = Client::connect(&handle);

    // Corrupt the CRC: ERR, but the connection survives.
    let mut frame = encode_ingest_frame(&[(19, 100, 56.0)]);
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    client.send(&format!("INGESTB traffic {}", frame.len()));
    client.stream.write_all(&frame).unwrap();
    assert!(client.read_line().starts_with("ERR frame:"));
    assert_eq!(client.request("PING")[0], "OK PONG");

    // An absurd announced size is refused up front and closes the socket.
    client.send("INGESTB traffic 999999999");
    assert!(client.read_line().starts_with("ERR frame"));
    let mut probe = String::new();
    let n = client.reader.read_line(&mut probe).unwrap_or(0);
    assert_eq!(n, 0, "oversize frame announcement closes the connection");
    handle.stop();
}

/// A sharded server must answer queries bit-identically to the
/// single-engine in-process path — the tentpole's hard invariant, proven
/// over the wire.
#[test]
fn sharded_server_is_bit_identical_to_unsharded() {
    use ausdb_learn::learner::RawObservation;
    use ausdb_serve::client::BatchClient;

    let rows = observation_rows();
    let mut state = EngineState::new(engine_config());
    ingest_rows_inproc(&mut state, &rows);

    for shards in [2usize, 8] {
        let handle = start_sharded_server(None, Duration::from_millis(25), shards);
        let mut batch = BatchClient::connect(&handle.addr().to_string()).expect("batch connect");
        let raw: Vec<RawObservation> =
            rows.iter().map(|&(key, ts, value)| RawObservation::new(key, ts, value)).collect();
        let outcome = batch.ingest_batch("traffic", &raw).expect("batch ingest");
        assert_eq!(outcome.accepted, rows.len() as u64);

        let mut client = Client::connect(&handle);
        for sql in [
            "SELECT * FROM traffic",
            "SELECT * FROM traffic WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
        ] {
            assert_eq!(
                client.request(&format!("QUERY {sql}")),
                expected_reply(&state, sql),
                "{shards}-shard server vs unsharded in-process mismatch for {sql}"
            );
        }
        handle.stop();
    }
}
