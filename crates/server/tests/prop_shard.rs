//! Property tests for the tentpole invariant of the sharded engine:
//! **shard count is unobservable**. For any row stream — arbitrary key
//! mix, out-of-order timestamps (late rows), time jumps — a `ShardSet`
//! with 1, 2, or 8 shards must produce byte-identical snapshots,
//! bit-identical query renders, and identical stats/counters; and a
//! snapshot taken at one shard count must restore exactly at another.

use ausdb_learn::accuracy::DistKind;
use ausdb_learn::learner::{LearnerConfig, RawObservation};
use ausdb_model::codec::{Codec, Writer};
use ausdb_serve::render::{render_rows, render_schema};
use ausdb_serve::shard::ShardSet;
use ausdb_serve::state::{EngineConfig, QueryReply, ServerSnapshot};
use proptest::prelude::*;

const WINDOW: u64 = 10;

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        learner: LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: WINDOW,
            min_observations: 2,
        },
        max_subscribers: 4,
        queue_cap: 64,
        shards,
    }
}

fn snapshot_bytes(snap: &ServerSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    snap.encode(&mut w);
    w.into_bytes()
}

/// Renders a query reply injectively: equal lines ⇔ equal bits. A
/// legitimate error (e.g. no window registered yet) renders as an `ERR`
/// line so both sides must fail identically too.
fn rendered(set: &ShardSet, sql: &str) -> Vec<String> {
    match set.query(sql) {
        Ok(QueryReply::Rows(schema, tuples)) => {
            let mut lines = vec![render_schema(&schema)];
            lines.extend(render_rows(&tuples));
            lines
        }
        Ok(QueryReply::Plan(lines)) => lines,
        Err(e) => vec![format!("ERR {e}")],
    }
}

/// Feeds the same rows to every set via the *line* path.
fn ingest_lines(set: &ShardSet, rows: &[RawObservation]) {
    for r in rows {
        set.ingest("traffic", &format!("{},{},{}", r.key, r.ts, r.value))
            .expect("line ingest succeeds");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 1-, 2-, and 8-shard sets fed identical rows are indistinguishable:
    /// same snapshot bytes, same query render, same counters.
    #[test]
    fn shard_count_is_unobservable(
        raw in prop::collection::vec(
            // Keys collide across shards; timestamps are arbitrary within
            // a few windows, so late rows and window closes both happen.
            (-3i64..10, 80u64..400, -1e6..=1e6f64),
            1..80,
        ),
    ) {
        let rows: Vec<RawObservation> =
            raw.iter().map(|&(k, ts, v)| RawObservation::new(k, ts, v)).collect();

        let reference = ShardSet::new(config(1));
        ingest_lines(&reference, &rows);
        let want_snap = snapshot_bytes(&reference.to_snapshot());
        let want_query = rendered(&reference, "SELECT * FROM traffic");
        let want_counters = reference.counters();

        for shards in [2usize, 8] {
            let set = ShardSet::new(config(shards));
            ingest_lines(&set, &rows);
            prop_assert_eq!(
                snapshot_bytes(&set.to_snapshot()),
                want_snap.clone(),
                "snapshot bytes differ at {} shards", shards
            );
            prop_assert_eq!(
                rendered(&set, "SELECT * FROM traffic"),
                want_query.clone(),
                "query render differs at {} shards", shards
            );
            let got = set.counters();
            prop_assert_eq!(got.rows_ingested, want_counters.rows_ingested);
            prop_assert_eq!(got.late_rows, want_counters.late_rows);
            prop_assert_eq!(got.windows_emitted, want_counters.windows_emitted);
        }
    }

    /// The binary batch path is serial-equivalent to line-at-a-time
    /// ingest at every shard count — identical snapshots and outcomes.
    #[test]
    fn batch_ingest_equals_line_ingest_at_any_shard_count(
        raw in prop::collection::vec(
            (0i64..6, 90u64..300, -50.0..=50.0f64),
            1..60,
        ),
        shards in 1usize..9,
    ) {
        let rows: Vec<RawObservation> =
            raw.iter().map(|&(k, ts, v)| RawObservation::new(k, ts, v)).collect();

        let line_set = ShardSet::new(config(shards));
        ingest_lines(&line_set, &rows);

        let batch_set = ShardSet::new(config(shards));
        let outcome = batch_set.ingest_batch("traffic", &rows).expect("batch ingest");

        prop_assert_eq!(outcome.accepted, rows.len() as u64);
        prop_assert_eq!(
            snapshot_bytes(&batch_set.to_snapshot()),
            snapshot_bytes(&line_set.to_snapshot()),
            "batch vs line snapshot differs at {} shards", shards
        );
        prop_assert_eq!(batch_set.stats_lines(), line_set.stats_lines());
    }

    /// Kill-and-restore across a shard-count change is exact: a snapshot
    /// taken at `from` shards restores at `to` shards with identical
    /// bytes and identical future behavior (closing the open window).
    #[test]
    fn restore_across_shard_counts_is_exact(
        raw in prop::collection::vec(
            (-5i64..12, 100u64..260, -1e3..=1e3f64),
            1..50,
        ),
        from in 1usize..9,
        to in 1usize..9,
    ) {
        let rows: Vec<RawObservation> =
            raw.iter().map(|&(k, ts, v)| RawObservation::new(k, ts, v)).collect();

        let origin = ShardSet::new(config(from));
        origin.ingest_batch("traffic", &rows).expect("batch ingest");
        let snap = origin.to_snapshot();
        let want = snapshot_bytes(&snap);

        let revived = ShardSet::new(config(to));
        let restored = revived.restore(snap).expect("restore succeeds");
        prop_assert_eq!(restored, 1, "one stream restored");
        prop_assert_eq!(
            snapshot_bytes(&revived.to_snapshot()),
            want,
            "restore {}→{} shards is not exact", from, to
        );

        // Both lineages must agree on the future too: a closing row far
        // past every buffered timestamp flushes the open window the same
        // way on the original and the revived set.
        let closing = [RawObservation::new(1, 1_000, 7.5)];
        origin.ingest_batch("traffic", &closing).expect("closing row (origin)");
        revived.ingest_batch("traffic", &closing).expect("closing row (revived)");
        prop_assert_eq!(
            snapshot_bytes(&revived.to_snapshot()),
            snapshot_bytes(&origin.to_snapshot()),
            "post-restore window close diverges ({}→{} shards)", from, to
        );
        prop_assert_eq!(
            rendered(&revived, "SELECT * FROM traffic"),
            rendered(&origin, "SELECT * FROM traffic")
        );
    }
}
