//! Durability and replication acceptance tests:
//!
//! 1. **Crash equivalence**: a server killed (`kill -9` semantics — no
//!    final snapshot, no WAL flush) mid-window and restarted answers the
//!    next window close **byte-identically** to a server that was never
//!    interrupted — query lines and snapshot file bytes — at 1 shard and
//!    at 4.
//! 2. **Follower equivalence**: a read-only follower catches up over
//!    `REPLICATE` (snapshot bootstrap + record streaming), rejects
//!    writes, serves the same query bytes as its primary, and — after
//!    the primary dies and the follower is `PROMOTE`d — finishes the
//!    workload byte-identically to an uninterrupted single server.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ausdb_learn::accuracy::DistKind;
use ausdb_learn::learner::LearnerConfig;
use ausdb_serve::server::{Server, ServerConfig, ServerHandle};
use ausdb_serve::state::EngineConfig;

const WINDOW: u64 = 10;

fn engine_config(shards: usize) -> EngineConfig {
    EngineConfig {
        learner: LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: WINDOW,
            min_observations: 2,
        },
        max_subscribers: 8,
        queue_cap: 64,
        shards,
    }
}

/// A scratch directory holding one server's snapshot + WAL.
struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir()
            .join(format!(
                "ausdb_repl_{tag}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ))
            .join("d");
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }
    fn snapshot(&self) -> PathBuf {
        self.root.join("state.snap")
    }
    fn wal(&self) -> PathBuf {
        self.root.join("wal")
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        std::fs::remove_dir_all(self.root.parent().unwrap_or(&self.root)).ok();
    }
}

fn start(dirs: &Dirs, shards: usize, replicate_from: Option<String>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        snapshot_path: Some(dirs.snapshot()),
        engine: engine_config(shards),
        tick: Duration::from_millis(5),
        wal_dir: Some(dirs.wal()),
        replicate_from,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut client = Self { stream, reader };
        assert_eq!(client.read_line(), "OK ausdb-serve 1 ready");
        client
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches(['\n', '\r']).to_string()
    }

    fn request(&mut self, line: &str) -> Vec<String> {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") || first.starts_with("ERR") || first.starts_with("BYE") {
            return lines;
        }
        while !lines.last().unwrap().starts_with("END") {
            lines.push(self.read_line());
        }
        lines
    }
}

/// The workload: multiple keys, two full windows, a late row, buffered
/// leftovers in a third open window. Each row is one `INGEST` line, so
/// the WAL sequence numbering is identical in every run that feeds the
/// same prefix.
fn workload() -> Vec<(i64, u64, f64)> {
    let mut rows = Vec::new();
    for w in 0..2u64 {
        let base = 100 + w * WINDOW;
        rows.push((19, base, 56.0 + w as f64));
        rows.push((19, base + 1, 38.5));
        rows.push((19, base + 3, 97.25));
        for i in 0..8u64 {
            rows.push((20, base + (i % WINDOW), 60.0 + (i as f64) * 1.5));
        }
    }
    rows.push((19, 95, 1.5)); // late
    rows.push((19, 120, 41.0)); // third window, buffered only
    rows.push((20, 121, 62.5));
    rows.push((20, 130, 70.0)); // closes the third window
    rows.push((19, 131, 44.0));
    rows
}

fn ingest(client: &mut Client, rows: &[(i64, u64, f64)]) {
    for (key, ts, value) in rows {
        let reply = client.request(&format!("INGEST traffic {key},{ts},{value}"));
        assert!(reply[0].starts_with("OK INGESTED"), "got {reply:?}");
    }
}

/// `QUERY` lines + `STATS` stream lines + the snapshot file bytes after
/// an explicit `SNAPSHOT` — the full observable surface compared across
/// runs.
fn observe(client: &mut Client, snapshot_path: &std::path::Path) -> (Vec<String>, Vec<u8>) {
    let mut lines = client.request("QUERY SELECT * FROM traffic");
    lines.extend(client.request("QUERY SELECT key, avg FROM traffic WHERE avg > 0.0"));
    let snap_reply = client.request("SNAPSHOT");
    assert!(snap_reply[0].starts_with("OK SNAPSHOT"), "got {snap_reply:?}");
    let bytes = std::fs::read(snapshot_path).expect("snapshot file exists");
    (lines, bytes)
}

#[test]
fn kill_9_mid_window_then_restart_is_byte_identical() {
    for shards in [1usize, 4] {
        let rows = workload();
        let cut = 14; // mid-window: window 1 is open with buffered rows

        // Reference: one uninterrupted server over the whole workload.
        let ref_dirs = Dirs::new(&format!("ref{shards}"));
        let ref_server = start(&ref_dirs, shards, None);
        let mut c = Client::connect(&ref_server);
        ingest(&mut c, &rows);
        let (ref_lines, ref_bytes) = observe(&mut c, &ref_dirs.snapshot());
        drop(c);
        ref_server.stop();

        // Crashed: ingest a prefix, kill -9, restart, finish the workload.
        let dirs = Dirs::new(&format!("crash{shards}"));
        let server = start(&dirs, shards, None);
        let mut c = Client::connect(&server);
        ingest(&mut c, &rows[..cut]);
        drop(c);
        server.kill();
        assert!(!dirs.snapshot().exists(), "kill -9 must not write a snapshot");

        let server = start(&dirs, shards, None);
        assert_eq!(server.replayed_records(), cut, "shards={shards}");
        let mut c = Client::connect(&server);
        ingest(&mut c, &rows[cut..]);
        let (lines, bytes) = observe(&mut c, &dirs.snapshot());
        drop(c);
        server.stop();

        assert_eq!(lines, ref_lines, "query divergence after crash at shards={shards}");
        assert_eq!(bytes, ref_bytes, "snapshot bytes diverge after crash at shards={shards}");
    }
}

#[test]
fn restart_after_graceful_stop_replays_nothing() {
    let dirs = Dirs::new("graceful");
    let server = start(&dirs, 1, None);
    let mut c = Client::connect(&server);
    ingest(&mut c, &workload());
    drop(c);
    server.stop(); // writes snapshot, truncates covered WAL records

    let server = start(&dirs, 1, None);
    assert_eq!(server.replayed_records(), 0, "snapshot already covers the whole log");
    assert!(server.restored_streams() > 0);
    server.stop();
}

fn wait_for_catchup(follower: &mut Client, want_last: u64) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let line = &follower.request("WALSTAT")[0];
        let last: u64 = line
            .split_whitespace()
            .find_map(|t| t.strip_prefix("last_seq="))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("malformed WALSTAT: {line}"));
        if last >= want_last {
            return;
        }
        assert!(Instant::now() < deadline, "follower stuck at {last}/{want_last}: {line}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn follower_bootstraps_replicates_and_promotes_byte_identically() {
    for shards in [1usize, 4] {
        let rows = workload();
        let (half, cut) = (11, 17);

        // Reference: one uninterrupted server over the whole workload.
        let ref_dirs = Dirs::new(&format!("pref{shards}"));
        let ref_server = start(&ref_dirs, shards, None);
        let mut c = Client::connect(&ref_server);
        ingest(&mut c, &rows);
        let (ref_lines, ref_bytes) = observe(&mut c, &ref_dirs.snapshot());
        drop(c);
        ref_server.stop();

        // Primary: ingest half, snapshot (truncates the WAL, forcing the
        // follower through the SNAP bootstrap path), ingest more.
        let p_dirs = Dirs::new(&format!("prim{shards}"));
        let primary = start(&p_dirs, shards, None);
        let mut pc = Client::connect(&primary);
        ingest(&mut pc, &rows[..half]);
        assert!(pc.request("SNAPSHOT")[0].starts_with("OK SNAPSHOT"));
        ingest(&mut pc, &rows[half..cut]);

        // Follower: catches up through snapshot + records.
        let f_dirs = Dirs::new(&format!("foll{shards}"));
        let follower = start(&f_dirs, shards, Some(primary.addr().to_string()));
        assert!(follower.is_follower());
        let mut fc = Client::connect(&follower);
        wait_for_catchup(&mut fc, cut as u64);

        // Read-only: every write path answers a clear ERR.
        let rej = fc.request("INGEST traffic 1,999,1.0");
        assert!(rej[0].starts_with("ERR read-only follower"), "got {rej:?}");
        assert!(fc.request("RESTORE")[0].starts_with("ERR read-only follower"));
        let walstat = &fc.request("WALSTAT")[0];
        assert!(walstat.contains("role=follower"), "{walstat}");

        // The follower serves the primary's query bytes.
        let q = "QUERY SELECT * FROM traffic";
        assert_eq!(fc.request(q), pc.request(q), "follower diverges at shards={shards}");

        // Primary dies; promote the follower and finish the workload on it.
        drop(pc);
        primary.kill();
        assert!(fc.request("PROMOTE")[0].starts_with("OK PROMOTED"));
        assert!(!follower.is_follower());
        assert!(fc.request("WALSTAT")[0].contains("role=primary"));
        ingest(&mut fc, &rows[cut..]);
        let (lines, bytes) = observe(&mut fc, &f_dirs.snapshot());
        drop(fc);
        follower.stop();

        assert_eq!(lines, ref_lines, "promoted follower diverges at shards={shards}");
        assert_eq!(bytes, ref_bytes, "snapshot bytes diverge at shards={shards}");
    }
}

/// The bug this guards against: the bootstrap snapshot lived only in
/// memory, so a restarted follower replayed just its WAL tail — losing
/// everything the bootstrap covered — while its high `last_seq` made the
/// primary believe it was caught up (so it never re-sent the data).
#[test]
fn follower_restart_after_bootstrap_keeps_snapshot_covered_state() {
    let rows = workload();
    let (half, cut) = (11, 17);

    // Primary: snapshot after half the rows (truncating the WAL, which
    // forces the follower through the SNAP bootstrap path), then more.
    let p_dirs = Dirs::new("rsprim");
    let primary = start(&p_dirs, 1, None);
    let mut pc = Client::connect(&primary);
    ingest(&mut pc, &rows[..half]);
    assert!(pc.request("SNAPSHOT")[0].starts_with("OK SNAPSHOT"));
    ingest(&mut pc, &rows[half..cut]);

    // Follower catches up (bootstrap + records), then dies hard — the
    // only state that survives is what replication persisted.
    let f_dirs = Dirs::new("rsfoll");
    let follower = start(&f_dirs, 1, Some(primary.addr().to_string()));
    let mut fc = Client::connect(&follower);
    wait_for_catchup(&mut fc, cut as u64);
    drop(fc);
    follower.kill();
    assert!(
        f_dirs.snapshot().exists(),
        "the bootstrap snapshot must be persisted when it is installed"
    );
    // Let the killed server's replication thread notice the shutdown flag
    // before a second server opens the same WAL directory.
    std::thread::sleep(Duration::from_millis(200));

    // The restarted follower must answer from snapshot + WAL tail alone:
    // its WAL already holds every sequence number, so the primary will
    // never re-send the bootstrap-covered records.
    let follower = start(&f_dirs, 1, Some(primary.addr().to_string()));
    let mut fc = Client::connect(&follower);
    wait_for_catchup(&mut fc, cut as u64);
    let q = "QUERY SELECT * FROM traffic";
    assert_eq!(fc.request(q), pc.request(q), "restarted follower lost bootstrap-covered state");
    drop(pc);
    drop(fc);
    follower.stop();
    primary.stop();
}

/// Minimal HTTP GET over a raw socket: returns (status line, body).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body separator");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

fn start_follower_with_http(dirs: &Dirs, primary: String) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        snapshot_path: Some(dirs.snapshot()),
        engine: engine_config(1),
        tick: Duration::from_millis(5),
        http_addr: Some("127.0.0.1:0".to_string()),
        wal_dir: Some(dirs.wal()),
        replicate_from: Some(primary),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

#[test]
fn follower_readyz_is_503_until_bootstrapped() {
    // Phase 1: a follower whose "primary" never answers (a bound listener
    // that never accepts the greeting exchange) can never bootstrap — it
    // stays live (healthz 200) but unready (readyz 503) indefinitely.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let d1 = Dirs::new("ready503");
    let follower = start_follower_with_http(&d1, mute.local_addr().unwrap().to_string());
    let http = follower.http_addr().expect("http listener bound");
    let (status, _) = http_get(http, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK", "liveness is independent of bootstrap");
    let (status, body) = http_get(http, "/readyz");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
    assert!(body.contains("\"status\":\"unavailable\""), "got {body}");
    assert!(body.contains("bootstrapping"), "got {body}");
    let mut fc = Client::connect(&follower);
    let health = fc.request("HEALTH");
    assert!(health[0].starts_with("HEALTH role=follower ready=false"), "got {:?}", health[0]);
    // PROMOTE makes the node serve as primary, which implies readiness.
    assert!(fc.request("PROMOTE")[0].starts_with("OK PROMOTED"));
    let (status, _) = http_get(http, "/readyz");
    assert_eq!(status, "HTTP/1.1 200 OK", "a promoted node is ready by definition");
    drop(fc);
    follower.stop();
    drop(mute);

    // Phase 2: against a real primary the follower flips to ready once
    // the first replication reply — snapshot bootstrap included — has
    // been fully applied.
    let p_dirs = Dirs::new("readyprim");
    let primary = start(&p_dirs, 1, None);
    let mut pc = Client::connect(&primary);
    let rows = workload();
    ingest(&mut pc, &rows[..11]);
    assert!(pc.request("SNAPSHOT")[0].starts_with("OK SNAPSHOT"));
    ingest(&mut pc, &rows[11..17]);

    let d2 = Dirs::new("ready200");
    let follower = start_follower_with_http(&d2, primary.addr().to_string());
    let http = follower.http_addr().expect("http listener bound");
    let mut fc = Client::connect(&follower);
    wait_for_catchup(&mut fc, 17);
    let (status, body) = http_get(http, "/readyz");
    assert_eq!(status, "HTTP/1.1 200 OK", "bootstrapped follower is ready: {body}");
    let health = fc.request("HEALTH");
    assert!(health[0].starts_with("HEALTH role=follower ready=true"), "got {:?}", health[0]);
    drop(fc);
    drop(pc);
    follower.stop();
    primary.stop();
}

#[test]
fn follower_requires_snapshot_path() {
    let dirs = Dirs::new("nosnap");
    match Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        wal_dir: Some(dirs.wal()),
        replicate_from: Some("127.0.0.1:1".to_string()),
        ..ServerConfig::default()
    }) {
        Ok(_) => panic!("--replicate-from without --snapshot-path must be refused"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
    }
}

#[test]
fn follower_requires_wal_dir() {
    match Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        replicate_from: Some("127.0.0.1:1".to_string()),
        ..ServerConfig::default()
    }) {
        Ok(_) => panic!("--replicate-from without --wal-dir must be refused"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
    }
}

#[test]
fn snapshot_truncates_the_wal() {
    let dirs = Dirs::new("trunc");
    let server = start(&dirs, 1, None);
    let mut c = Client::connect(&server);
    ingest(&mut c, &workload());
    let before = c.request("WALSTAT")[0].clone();
    assert!(before.contains("wal=on"), "{before}");
    assert!(c.request("SNAPSHOT")[0].starts_with("OK SNAPSHOT"));
    let after = c.request("WALSTAT")[0].clone();
    let bytes = |s: &str| -> u64 {
        s.split_whitespace()
            .find_map(|t| t.strip_prefix("bytes="))
            .and_then(|v| v.parse().ok())
            .unwrap()
    };
    assert!(
        bytes(&after) < bytes(&before),
        "snapshot should reclaim WAL bytes: {before} -> {after}"
    );
    drop(c);
    server.stop();
}
