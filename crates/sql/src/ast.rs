//! Abstract syntax tree for the extended SQL dialect.

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Column(String),
    /// Numeric literal.
    Number(f64),
    /// `expr + expr` etc.
    Binary {
        /// `+`, `-`, `*`, `/`.
        op: char,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `SQRT(ABS(expr))`.
    SqrtAbs(Box<SqlExpr>),
    /// `SQUARE(expr)`.
    Square(Box<SqlExpr>),
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// Aggregate call `AVG(col)` / `SUM(col)` / `COUNT(col)` — only valid
    /// in the SELECT list of a `GROUP BY` query.
    Aggregate {
        /// `AVG`, `SUM`, or `COUNT` (uppercased).
        func: String,
        /// The aggregated column.
        column: String,
    },
}

/// A comparison operator in source form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

/// A boolean predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlPredicate {
    /// `expr op expr [PROB τ]`.
    Compare {
        /// Left side.
        left: SqlExpr,
        /// Operator.
        op: SqlCmp,
        /// Right side.
        right: SqlExpr,
        /// Probability threshold (the `PROB τ` suffix), if present.
        prob: Option<f64>,
    },
    /// Conjunction.
    And(Box<SqlPredicate>, Box<SqlPredicate>),
    /// Disjunction.
    Or(Box<SqlPredicate>, Box<SqlPredicate>),
    /// Negation.
    Not(Box<SqlPredicate>),
}

/// A significance predicate call.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlSigPredicate {
    /// `MTEST(expr, op, c, α₁ [, α₂])`.
    MTest {
        /// Field under test.
        expr: SqlExpr,
        /// H₁ direction: `<`, `>`, or `<>`.
        op: String,
        /// Comparison constant.
        c: f64,
        /// Significance level / max false-positive rate.
        alpha1: f64,
        /// Max false-negative rate; presence selects `COUPLED-TESTS`.
        alpha2: Option<f64>,
    },
    /// `MDTEST(expr, expr, op, c, α₁ [, α₂])`.
    MdTest {
        /// First field.
        x: SqlExpr,
        /// Second field.
        y: SqlExpr,
        /// H₁ direction.
        op: String,
        /// Difference constant.
        c: f64,
        /// Significance level.
        alpha1: f64,
        /// Max false-negative rate (coupled mode).
        alpha2: Option<f64>,
    },
    /// `PTEST(comparison, τ, α₁ [, α₂])`.
    PTest {
        /// The inner comparison predicate.
        pred: Box<SqlPredicate>,
        /// Probability threshold τ.
        tau: f64,
        /// Significance level.
        alpha1: f64,
        /// Max false-negative rate (coupled mode).
        alpha2: Option<f64>,
    },
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// `WINDOW AVG(col) SIZE n` (count-based) or
/// `WINDOW AVG(col) RANGE w [MIN k]` (time-based).
#[derive(Debug, Clone, PartialEq)]
pub struct SqlWindow {
    /// `AVG` or `SUM` (uppercased).
    pub func: String,
    /// The aggregated column.
    pub column: String,
    /// Count-based size, or time-based width with a minimum tuple count.
    pub kind: SqlWindowKind,
}

/// The windowing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlWindowKind {
    /// `SIZE n`: the paper's count-based sliding window.
    Count(usize),
    /// `RANGE w MIN k`: trailing `w` time units, emitting once at least
    /// `k` tuples are inside.
    Time {
        /// Window width in timestamp units.
        width: u64,
        /// Minimum tuples before emitting.
        min_tuples: usize,
    },
}

/// `WITH ACCURACY …` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlAccuracy {
    /// `NONE`, `ANALYTICAL`, or `BOOTSTRAP` (uppercased).
    pub mode: String,
    /// `LEVEL c` (confidence level).
    pub level: Option<f64>,
    /// `SAMPLES m` (Monte-Carlo sequence length for bootstraps).
    pub samples: Option<usize>,
}

/// `JOIN other ON key`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlJoin {
    /// The stream joined in.
    pub stream: String,
    /// The shared key column.
    pub key: String,
}

/// A top-level statement: either a query to execute or a
/// plan-introspection request wrapping one.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain SELECT.
    Select(SelectStmt),
    /// `EXPLAIN <select>` (plan only) or `EXPLAIN ANALYZE <select>`
    /// (execute, then annotate the plan with observed statistics).
    Explain {
        /// `true` for the ANALYZE form.
        analyze: bool,
        /// The statement being explained.
        stmt: SelectStmt,
    },
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list; `None` means `*`.
    pub items: Option<Vec<SelectItem>>,
    /// FROM stream name.
    pub from: String,
    /// Optional equijoin.
    pub join: Option<SqlJoin>,
    /// Optional `GROUP BY` column.
    pub group_by: Option<String>,
    /// Optional `ORDER BY column [ASC|DESC]`.
    pub order_by: Option<(String, bool)>,
    /// Optional `LIMIT n`.
    pub limit: Option<usize>,
    /// Window clause.
    pub window: Option<SqlWindow>,
    /// WHERE predicate.
    pub predicate: Option<SqlPredicate>,
    /// HAVING significance predicate.
    pub significance: Option<SqlSigPredicate>,
    /// WITH ACCURACY clause.
    pub accuracy: Option<SqlAccuracy>,
}
