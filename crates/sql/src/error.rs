//! SQL front-end errors.

/// Errors raised while lexing, parsing, or planning a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// A character the lexer does not understand.
    Lex {
        /// Byte offset into the query text.
        pos: usize,
        /// Description of the problem.
        what: String,
    },
    /// Unexpected token during parsing.
    Parse {
        /// Byte offset of the offending token.
        pos: usize,
        /// Description of what was expected vs. found.
        what: String,
    },
    /// The query parsed but cannot be planned (bad column, bad parameter
    /// range, non-constant comparison side, ...).
    Plan(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { pos, what } => write!(f, "lex error at byte {pos}: {what}"),
            SqlError::Parse { pos, what } => write!(f, "parse error at byte {pos}: {what}"),
            SqlError::Plan(what) => write!(f, "plan error: {what}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = SqlError::Parse { pos: 17, what: "expected FROM".into() };
        let s = e.to_string();
        assert!(s.contains("17") && s.contains("FROM"));
    }
}
