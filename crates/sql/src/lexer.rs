//! Hand-written lexer for the extended SQL dialect.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at parse time).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `;`
    Semi,
}

/// A token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// Tokenizes a query string.
pub fn lex(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned { token: Token::LParen, pos });
                i += 1;
            }
            ')' => {
                out.push(Spanned { token: Token::RParen, pos });
                i += 1;
            }
            ',' => {
                out.push(Spanned { token: Token::Comma, pos });
                i += 1;
            }
            ';' => {
                out.push(Spanned { token: Token::Semi, pos });
                i += 1;
            }
            '*' => {
                out.push(Spanned { token: Token::Star, pos });
                i += 1;
            }
            '+' => {
                out.push(Spanned { token: Token::Plus, pos });
                i += 1;
            }
            '-' => {
                out.push(Spanned { token: Token::Minus, pos });
                i += 1;
            }
            '/' => {
                out.push(Spanned { token: Token::Slash, pos });
                i += 1;
            }
            '=' => {
                out.push(Spanned { token: Token::Eq, pos });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::Le, pos });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Spanned { token: Token::Ne, pos });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Lt, pos });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::Ge, pos });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, pos });
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SqlError::Lex { pos, what: "unterminated string".into() });
                }
                out.push(Spanned { token: Token::Str(input[start..j].to_owned()), pos });
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && !seen_exp
                        && j > start
                        && j + 1 < bytes.len()
                        && (bytes[j + 1].is_ascii_digit()
                            || bytes[j + 1] == b'-'
                            || bytes[j + 1] == b'+')
                    {
                        seen_exp = true;
                        j += 2; // consume 'e' and the sign/digit
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                let value: f64 = text.parse().map_err(|_| SqlError::Lex {
                    pos,
                    what: format!("bad numeric literal '{text}'"),
                })?;
                out.push(Spanned { token: Token::Number(value), pos });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Spanned { token: Token::Ident(input[start..j].to_owned()), pos });
                i = j;
            }
            other => {
                return Err(SqlError::Lex { pos, what: format!("unexpected character '{other}'") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_query() {
        let t = toks("SELECT road_id FROM t WHERE delay > 50 PROB 0.66");
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::Ident("road_id".into()));
        assert!(t.contains(&Token::Gt));
        assert!(t.contains(&Token::Number(50.0)));
        assert!(t.contains(&Token::Number(0.66)));
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("< <= > >= = <>"),
            vec![Token::Lt, Token::Le, Token::Gt, Token::Ge, Token::Eq, Token::Ne]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 0.05 1e3 2.5e-2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(0.05),
                Token::Number(1000.0),
                Token::Number(0.025),
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        let t = toks("MTEST(x, '>', 97, 0.05) -- trailing comment\n;");
        assert!(t.contains(&Token::Str(">".into())));
        assert_eq!(*t.last().unwrap(), Token::Semi);
    }

    #[test]
    fn errors() {
        assert!(lex("SELECT 'unterminated").is_err());
        assert!(lex("SELECT #x").is_err());
        assert!(lex(".").is_err(), "a lone dot is not a number");
    }

    #[test]
    fn positions_recorded() {
        let ts = lex("SELECT x").unwrap();
        assert_eq!(ts[0].pos, 0);
        assert_eq!(ts[1].pos, 7);
    }
}
