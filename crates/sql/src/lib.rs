//! Extended-SQL front end.
//!
//! The paper's queries extend SQL in three ways, all supported here:
//!
//! * **Probability-threshold comparisons** — `Delay > 50 PROB 0.66` is the
//!   textual form of the paper's `Delay >_{2/3} 50` (Example 1).
//! * **Significance predicates** — `MTEST(x, '>', 97, 0.05)`,
//!   `MDTEST(x, y, '>', 0, 0.05)`, `PTEST(x > 100, 0.5, 0.05)` as
//!   `HAVING`-style clauses; a second α argument switches to
//!   `COUPLED-TESTS` with both error rates bounded.
//! * **Sliding windows and accuracy modes** — `WINDOW AVG(x) SIZE 1000`
//!   (count-based) or `WINDOW AVG(x) RANGE 60 MIN 4` (time-based), and
//!   `WITH ACCURACY {NONE | ANALYTICAL | BOOTSTRAP} [LEVEL c]
//!   [SAMPLES m]`.
//! * **Relational completeness** — `JOIN … ON key`, `GROUP BY key` with
//!   `AVG`/`SUM`/`COUNT`, `ORDER BY col [DESC]`, `LIMIT n`.
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`planner`]
//! (producing an [`ausdb_engine::query::Query`]).
//!
//! Plan introspection: [`parse_statement`] additionally accepts
//! `EXPLAIN <select>` (render the plan without executing) and
//! `EXPLAIN ANALYZE <select>` (execute, then annotate each plan line with
//! the observed per-operator counters, timing, and accuracy attributes);
//! [`run_statement`] executes either form against a session.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::Statement;
pub use error::SqlError;
pub use parser::{parse, parse_statement};
pub use planner::{
    plan, run_sql, run_sql_with_stats, run_statement, run_statement_with_stats, PlannedQuery,
    SqlOutput,
};
