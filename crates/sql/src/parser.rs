//! Recursive-descent parser for the extended SQL dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement := [EXPLAIN [ANALYZE]] select
//! select    := SELECT list FROM ident [window] [where] [having] [with] [';']
//! list      := '*' | item (',' item)*
//! item      := expr [AS ident]
//! window    := WINDOW (AVG | SUM) '(' ident ')'
//!              ( SIZE number | RANGE number [MIN number] )
//! where     := WHERE pred
//! having    := HAVING sigpred
//! with      := WITH ACCURACY (NONE | ANALYTICAL | BOOTSTRAP)
//!              [LEVEL number] [SAMPLES number]
//! pred      := and_pred (OR and_pred)*
//! and_pred  := not_pred (AND not_pred)*
//! not_pred  := NOT not_pred | primary
//! primary   := '(' pred ')' | comparison
//! comparison:= expr cmp expr [PROB number]
//! sigpred   := MTEST '(' expr ',' op ',' number ',' number [',' number] ')'
//!            | MDTEST '(' expr ',' expr ',' op ',' number ',' number [',' number] ')'
//!            | PTEST '(' comparison ',' number ',' number [',' number] ')'
//! op        := '<' | '>' | '<>' | STRING containing one of those
//! expr      := term (('+'|'-') term)*
//! term      := factor (('*'|'/') factor)*
//! factor    := number | ident | '(' expr ')' | '-' factor
//!            | SQRT '(' ABS '(' expr ')' ')' | SQUARE '(' expr ')'
//! ```

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{lex, Spanned, Token};

/// Parses a SELECT statement.
pub fn parse(input: &str) -> Result<SelectStmt, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, i: 0 };
    let stmt = p.select()?;
    // Optional trailing semicolon, then end of input.
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parses a top-level statement: a SELECT, optionally wrapped in
/// `EXPLAIN` / `EXPLAIN ANALYZE`.
pub fn parse_statement(input: &str) -> Result<Statement, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, i: 0 };
    let stmt = if p.eat_kw("EXPLAIN") {
        let analyze = p.eat_kw("ANALYZE");
        Statement::Explain { analyze, stmt: p.select()? }
    } else {
        Statement::Select(p.select()?)
    };
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.i >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.i).map(|s| &s.token)
    }

    fn pos(&self) -> usize {
        self.tokens
            .get(self.i)
            .map(|s| s.pos)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.pos + 1).unwrap_or(0))
    }

    fn err(&self, what: impl Into<String>) -> SqlError {
        SqlError::Parse { pos: self.pos(), what: what.into() }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.i).map(|s| s.token.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), SqlError> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    /// Consumes the next token if it is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.i += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.i += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64, SqlError> {
        match self.peek() {
            Some(Token::Number(v)) => {
                let v = *v;
                self.i += 1;
                Ok(v)
            }
            Some(Token::Minus) => {
                self.i += 1;
                match self.peek() {
                    Some(Token::Number(v)) => {
                        let v = *v;
                        self.i += 1;
                        Ok(-v)
                    }
                    _ => Err(self.err(format!("expected {what}"))),
                }
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    // ---- statement ----

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let items = if self.eat_if(&Token::Star) {
            None
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat_if(&Token::Comma) {
                items.push(self.select_item()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let from = self.expect_ident("stream name")?;
        let join = if self.eat_kw("JOIN") {
            let stream = self.expect_ident("joined stream name")?;
            self.expect_kw("ON")?;
            let key = self.expect_ident("join key column")?;
            Some(SqlJoin { stream, key })
        } else {
            None
        };
        let mut group_by = None;
        let mut order_by = None;
        let mut limit = None;
        let mut window = None;
        let mut predicate = None;
        let mut significance = None;
        let mut accuracy = None;
        loop {
            if self.eat_kw("WINDOW") {
                if window.is_some() {
                    return Err(self.err("duplicate WINDOW clause"));
                }
                window = Some(self.window_clause()?);
            } else if self.eat_kw("WHERE") {
                if predicate.is_some() {
                    return Err(self.err("duplicate WHERE clause"));
                }
                predicate = Some(self.predicate()?);
            } else if self.eat_kw("HAVING") {
                if significance.is_some() {
                    return Err(self.err("duplicate HAVING clause"));
                }
                significance = Some(self.sig_predicate()?);
            } else if self.eat_kw("ORDER") {
                if order_by.is_some() {
                    return Err(self.err("duplicate ORDER BY clause"));
                }
                self.expect_kw("BY")?;
                let col = self.expect_ident("ordering column")?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by = Some((col, desc));
            } else if self.eat_kw("LIMIT") {
                if limit.is_some() {
                    return Err(self.err("duplicate LIMIT clause"));
                }
                let n = self.expect_number("limit")?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(self.err("LIMIT must be a nonnegative integer"));
                }
                limit = Some(n as usize);
            } else if self.eat_kw("GROUP") {
                if group_by.is_some() {
                    return Err(self.err("duplicate GROUP BY clause"));
                }
                self.expect_kw("BY")?;
                group_by = Some(self.expect_ident("grouping column")?);
            } else if self.eat_kw("WITH") {
                if accuracy.is_some() {
                    return Err(self.err("duplicate WITH ACCURACY clause"));
                }
                accuracy = Some(self.accuracy_clause()?);
            } else {
                break;
            }
        }
        Ok(SelectStmt {
            items,
            from,
            join,
            group_by,
            order_by,
            limit,
            window,
            predicate,
            significance,
            accuracy,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") { Some(self.expect_ident("alias")?) } else { None };
        Ok(SelectItem { expr, alias })
    }

    fn window_clause(&mut self) -> Result<SqlWindow, SqlError> {
        let func = self.expect_ident("AVG or SUM")?.to_ascii_uppercase();
        if func != "AVG" && func != "SUM" {
            return Err(self.err("window function must be AVG or SUM"));
        }
        self.expect(&Token::LParen, "'('")?;
        let column = self.expect_ident("column name")?;
        self.expect(&Token::RParen, "')'")?;
        let kind = if self.eat_kw("SIZE") {
            let size = self.expect_number("window size")?;
            if size < 1.0 || size.fract() != 0.0 {
                return Err(self.err("window size must be a positive integer"));
            }
            SqlWindowKind::Count(size as usize)
        } else if self.eat_kw("RANGE") {
            let width = self.expect_number("window range")?;
            if width < 1.0 || width.fract() != 0.0 {
                return Err(self.err("window range must be a positive integer"));
            }
            let min_tuples = if self.eat_kw("MIN") {
                let m = self.expect_number("minimum tuple count")?;
                if m < 1.0 || m.fract() != 0.0 {
                    return Err(self.err("MIN must be a positive integer"));
                }
                m as usize
            } else {
                1
            };
            SqlWindowKind::Time { width: width as u64, min_tuples }
        } else {
            return Err(self.err("expected SIZE or RANGE"));
        };
        Ok(SqlWindow { func, column, kind })
    }

    fn accuracy_clause(&mut self) -> Result<SqlAccuracy, SqlError> {
        self.expect_kw("ACCURACY")?;
        let mode = self.expect_ident("NONE, ANALYTICAL, or BOOTSTRAP")?.to_ascii_uppercase();
        if !matches!(mode.as_str(), "NONE" | "ANALYTICAL" | "BOOTSTRAP") {
            return Err(self.err("accuracy mode must be NONE, ANALYTICAL, or BOOTSTRAP"));
        }
        let mut level = None;
        let mut samples = None;
        loop {
            if self.eat_kw("LEVEL") {
                level = Some(self.expect_number("confidence level")?);
            } else if self.eat_kw("SAMPLES") {
                let m = self.expect_number("sample count")?;
                if m < 1.0 || m.fract() != 0.0 {
                    return Err(self.err("SAMPLES must be a positive integer"));
                }
                samples = Some(m as usize);
            } else {
                break;
            }
        }
        Ok(SqlAccuracy { mode, level, samples })
    }

    // ---- predicates ----

    fn predicate(&mut self) -> Result<SqlPredicate, SqlError> {
        let mut left = self.and_pred()?;
        while self.eat_kw("OR") {
            let right = self.and_pred()?;
            left = SqlPredicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<SqlPredicate, SqlError> {
        let mut left = self.not_pred()?;
        while self.eat_kw("AND") {
            let right = self.not_pred()?;
            left = SqlPredicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> Result<SqlPredicate, SqlError> {
        if self.eat_kw("NOT") {
            return Ok(SqlPredicate::Not(Box::new(self.not_pred()?)));
        }
        // '(' could open either a parenthesized predicate or a
        // parenthesized expression starting a comparison; backtrack if the
        // predicate interpretation fails.
        if self.peek() == Some(&Token::LParen) {
            let save = self.i;
            self.i += 1;
            if let Ok(p) = self.predicate() {
                if self.eat_if(&Token::RParen) {
                    return Ok(p);
                }
            }
            self.i = save;
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlPredicate, SqlError> {
        let left = self.expr()?;
        let op = match self.next() {
            Some(Token::Lt) => SqlCmp::Lt,
            Some(Token::Le) => SqlCmp::Le,
            Some(Token::Gt) => SqlCmp::Gt,
            Some(Token::Ge) => SqlCmp::Ge,
            Some(Token::Eq) => SqlCmp::Eq,
            Some(Token::Ne) => SqlCmp::Ne,
            _ => {
                self.i = self.i.saturating_sub(1);
                return Err(self.err("expected comparison operator"));
            }
        };
        let right = self.expr()?;
        let prob = if self.eat_kw("PROB") {
            Some(self.expect_number("probability threshold")?)
        } else {
            None
        };
        Ok(SqlPredicate::Compare { left, op, right, prob })
    }

    fn sig_predicate(&mut self) -> Result<SqlSigPredicate, SqlError> {
        if self.eat_kw("MTEST") {
            self.expect(&Token::LParen, "'('")?;
            let expr = self.expr()?;
            self.expect(&Token::Comma, "','")?;
            let op = self.sig_op()?;
            self.expect(&Token::Comma, "','")?;
            let c = self.expect_number("comparison constant")?;
            self.expect(&Token::Comma, "','")?;
            let alpha1 = self.expect_number("significance level")?;
            let alpha2 = if self.eat_if(&Token::Comma) {
                Some(self.expect_number("false-negative rate")?)
            } else {
                None
            };
            self.expect(&Token::RParen, "')'")?;
            Ok(SqlSigPredicate::MTest { expr, op, c, alpha1, alpha2 })
        } else if self.eat_kw("MDTEST") {
            self.expect(&Token::LParen, "'('")?;
            let x = self.expr()?;
            self.expect(&Token::Comma, "','")?;
            let y = self.expr()?;
            self.expect(&Token::Comma, "','")?;
            let op = self.sig_op()?;
            self.expect(&Token::Comma, "','")?;
            let c = self.expect_number("difference constant")?;
            self.expect(&Token::Comma, "','")?;
            let alpha1 = self.expect_number("significance level")?;
            let alpha2 = if self.eat_if(&Token::Comma) {
                Some(self.expect_number("false-negative rate")?)
            } else {
                None
            };
            self.expect(&Token::RParen, "')'")?;
            Ok(SqlSigPredicate::MdTest { x, y, op, c, alpha1, alpha2 })
        } else if self.eat_kw("PTEST") {
            self.expect(&Token::LParen, "'('")?;
            let pred = self.comparison()?;
            self.expect(&Token::Comma, "','")?;
            let tau = self.expect_number("probability threshold")?;
            self.expect(&Token::Comma, "','")?;
            let alpha1 = self.expect_number("significance level")?;
            let alpha2 = if self.eat_if(&Token::Comma) {
                Some(self.expect_number("false-negative rate")?)
            } else {
                None
            };
            self.expect(&Token::RParen, "')'")?;
            Ok(SqlSigPredicate::PTest { pred: Box::new(pred), tau, alpha1, alpha2 })
        } else {
            Err(self.err("expected MTEST, MDTEST, or PTEST"))
        }
    }

    /// The op argument of a significance predicate: a raw `<` / `>` / `<>`
    /// token or a string literal containing one.
    fn sig_op(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Lt) => Ok("<".into()),
            Some(Token::Gt) => Ok(">".into()),
            Some(Token::Ne) => Ok("<>".into()),
            Some(Token::Str(s)) if matches!(s.trim(), "<" | ">" | "<>") => Ok(s.trim().to_owned()),
            _ => {
                self.i = self.i.saturating_sub(1);
                Err(self.err("expected '<', '>', or '<>'"))
            }
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => '+',
                Some(Token::Minus) => '-',
                _ => break,
            };
            self.i += 1;
            let right = self.term()?;
            left = SqlExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => '*',
                Some(Token::Slash) => '/',
                _ => break,
            };
            self.i += 1;
            let right = self.factor()?;
            left = SqlExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Number(v)) => {
                self.i += 1;
                Ok(SqlExpr::Number(v))
            }
            Some(Token::Minus) => {
                self.i += 1;
                Ok(SqlExpr::Neg(Box::new(self.factor()?)))
            }
            Some(Token::LParen) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if matches!(name.to_ascii_uppercase().as_str(), "AVG" | "SUM" | "COUNT")
                    && self.tokens.get(self.i + 1).map(|s| &s.token) == Some(&Token::LParen)
                {
                    let func = name.to_ascii_uppercase();
                    self.i += 2; // the function name and '('
                    let column = self.expect_ident("aggregated column")?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(SqlExpr::Aggregate { func, column })
                } else if name.eq_ignore_ascii_case("SQRT") {
                    self.i += 1;
                    self.expect(&Token::LParen, "'('")?;
                    self.expect_kw("ABS")?;
                    self.expect(&Token::LParen, "'('")?;
                    let e = self.expr()?;
                    self.expect(&Token::RParen, "')'")?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(SqlExpr::SqrtAbs(Box::new(e)))
                } else if name.eq_ignore_ascii_case("SQUARE") {
                    self.i += 1;
                    self.expect(&Token::LParen, "'('")?;
                    let e = self.expr()?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(SqlExpr::Square(Box::new(e)))
                } else {
                    self.i += 1;
                    Ok(SqlExpr::Column(name))
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_query() {
        // The introduction's query, in our textual form.
        let s = parse("SELECT Road_ID FROM t WHERE Delay > 50 PROB 0.667").unwrap();
        assert_eq!(s.from, "t");
        let items = s.items.unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].expr, SqlExpr::Column("Road_ID".into()));
        match s.predicate.unwrap() {
            SqlPredicate::Compare { op, prob, .. } => {
                assert_eq!(op, SqlCmp::Gt);
                assert_eq!(prob, Some(0.667));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn select_star_and_alias() {
        let s = parse("SELECT * FROM stream").unwrap();
        assert!(s.items.is_none());
        let s = parse("SELECT (a + b) / 2 AS y1 FROM s").unwrap();
        assert_eq!(s.items.unwrap()[0].alias.as_deref(), Some("y1"));
    }

    #[test]
    fn six_operator_expressions() {
        let s = parse("SELECT SQRT(ABS(a - b)) * SQUARE(c) / 2 + 1 FROM s").unwrap();
        assert!(s.items.is_some());
    }

    #[test]
    fn boolean_predicates() {
        let s = parse("SELECT * FROM s WHERE a > 1 AND (b < 2 OR NOT c >= 3)").unwrap();
        match s.predicate.unwrap() {
            SqlPredicate::And(_, r) => match *r {
                SqlPredicate::Or(_, not) => {
                    assert!(matches!(*not, SqlPredicate::Not(_)));
                }
                other => panic!("expected OR, got {other:?}"),
            },
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn window_clause() {
        let s = parse("SELECT * FROM s WINDOW AVG(x) SIZE 1000").unwrap();
        let w = s.window.unwrap();
        assert_eq!(w.func, "AVG");
        assert_eq!(w.column, "x");
        assert_eq!(w.kind, SqlWindowKind::Count(1000));
        assert!(parse("SELECT * FROM s WINDOW MEDIAN(x) SIZE 10").is_err());
        assert!(parse("SELECT * FROM s WINDOW AVG(x) SIZE 0").is_err());
    }

    #[test]
    fn mtest_parsing() {
        // Example 9's mTest(temperature, ">", 97, 0.05).
        let s = parse("SELECT * FROM s HAVING MTEST(temperature, '>', 97, 0.05)").unwrap();
        match s.significance.unwrap() {
            SqlSigPredicate::MTest { op, c, alpha1, alpha2, .. } => {
                assert_eq!(op, ">");
                assert_eq!(c, 97.0);
                assert_eq!(alpha1, 0.05);
                assert_eq!(alpha2, None);
            }
            other => panic!("{other:?}"),
        }
        // Raw operator token and coupled form.
        let s = parse("SELECT * FROM s HAVING MTEST(x, <>, 0, 0.05, 0.1)").unwrap();
        match s.significance.unwrap() {
            SqlSigPredicate::MTest { op, alpha2, .. } => {
                assert_eq!(op, "<>");
                assert_eq!(alpha2, Some(0.1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mdtest_and_ptest_parsing() {
        let s = parse("SELECT * FROM s HAVING MDTEST(x, y, '>', 0, 0.05, 0.05)").unwrap();
        assert!(matches!(s.significance.unwrap(), SqlSigPredicate::MdTest { .. }));
        // Example 9's pTest("temperature > 100", 0.5, 0.05).
        let s = parse("SELECT * FROM s HAVING PTEST(temperature > 100, 0.5, 0.05)").unwrap();
        match s.significance.unwrap() {
            SqlSigPredicate::PTest { tau, alpha1, alpha2, .. } => {
                assert_eq!(tau, 0.5);
                assert_eq!(alpha1, 0.05);
                assert_eq!(alpha2, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn accuracy_clause() {
        let s = parse("SELECT * FROM s WITH ACCURACY BOOTSTRAP LEVEL 0.95 SAMPLES 500").unwrap();
        let a = s.accuracy.unwrap();
        assert_eq!(a.mode, "BOOTSTRAP");
        assert_eq!(a.level, Some(0.95));
        assert_eq!(a.samples, Some(500));
        assert!(parse("SELECT * FROM s WITH ACCURACY MAGIC").is_err());
    }

    #[test]
    fn clause_order_is_flexible() {
        let s = parse("SELECT * FROM s WITH ACCURACY ANALYTICAL WHERE x > 1 WINDOW AVG(x) SIZE 5")
            .unwrap();
        assert!(s.accuracy.is_some() && s.predicate.is_some() && s.window.is_some());
    }

    #[test]
    fn errors_are_positioned() {
        match parse("SELECT FROM s") {
            Err(SqlError::Parse { .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM s WHERE x >").is_err());
        assert!(parse("SELECT * FROM s garbage").is_err());
        assert!(parse("SELECT * FROM s WHERE x > 1 WHERE y > 2").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM s;").is_ok());
        assert!(parse("SELECT * FROM s;;").is_err());
    }

    #[test]
    fn explain_statements() {
        match parse_statement("SELECT * FROM s").unwrap() {
            Statement::Select(sel) => assert_eq!(sel.from, "s"),
            other => panic!("{other:?}"),
        }
        match parse_statement("EXPLAIN SELECT * FROM s WHERE x > 1;").unwrap() {
            Statement::Explain { analyze: false, stmt } => assert!(stmt.predicate.is_some()),
            other => panic!("{other:?}"),
        }
        match parse_statement("explain analyze SELECT * FROM s").unwrap() {
            Statement::Explain { analyze: true, .. } => {}
            other => panic!("{other:?}"),
        }
        // EXPLAIN wraps exactly one statement; garbage still rejected.
        assert!(parse_statement("EXPLAIN").is_err());
        assert!(parse_statement("EXPLAIN SELECT * FROM s extra").is_err());
        // `parse` itself does not accept EXPLAIN (callers wanting it use
        // `parse_statement`).
        assert!(parse("EXPLAIN SELECT * FROM s").is_err());
    }
}
