//! Planner: lowers the parsed AST into an executable
//! [`ausdb_engine::query::Query`].

use ausdb_engine::ops::GroupAggKind;
use ausdb_engine::ops::{AccuracyMode, Projection, SigMode, WindowAggKind};
use ausdb_engine::predicate::{CmpOp, Predicate};
use ausdb_engine::query::{
    GroupBySpec, JoinSpec, Query, QueryConfig, Session, WindowMode, WindowSpec,
};
use ausdb_engine::sigpred::{CoupledConfig, SigPredicate};
use ausdb_engine::{BinOp, Expr, UnaryOp};
use ausdb_model::schema::Schema;
use ausdb_model::tuple::Tuple;
use ausdb_stats::htest::Alternative;

use crate::ast::*;
use crate::error::SqlError;
use crate::parser::{parse, parse_statement};

/// A planned query: the source stream name, the engine query, and an
/// optional accuracy-mode override from the `WITH ACCURACY` clause.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// FROM stream.
    pub from: String,
    /// The executable query.
    pub query: Query,
    /// Accuracy override (`None` keeps the session's configured mode).
    pub accuracy: Option<AccuracyMode>,
}

/// Plans a parsed statement. Pass the source schema when known so column
/// references are validated at plan time.
pub fn plan(stmt: &SelectStmt, schema: Option<&Schema>) -> Result<PlannedQuery, SqlError> {
    let mut query = Query::select_all();

    // With a join the visible schema is the concatenation of two streams;
    // defer column validation to execution time.
    let schema = if stmt.join.is_some() { None } else { schema };
    if let Some(j) = &stmt.join {
        query = query.with_join(JoinSpec { right: j.stream.clone(), key: j.key.clone() });
    }
    if stmt.group_by.is_some() && stmt.window.is_some() {
        return Err(SqlError::Plan("GROUP BY cannot be combined with WINDOW".into()));
    }

    if let Some(w) = &stmt.window {
        let kind = match w.func.as_str() {
            "AVG" => WindowAggKind::Avg,
            "SUM" => WindowAggKind::Sum,
            other => return Err(SqlError::Plan(format!("unsupported window function {other}"))),
        };
        if let Some(schema) = schema {
            if schema.index_of(&w.column).is_err() {
                return Err(SqlError::Plan(format!("unknown window column '{}'", w.column)));
            }
        }
        let mode = match w.kind {
            SqlWindowKind::Count(size) => WindowMode::Count(size),
            SqlWindowKind::Time { width, min_tuples } => WindowMode::Time { width, min_tuples },
        };
        query = query.with_window(WindowSpec { column: w.column.clone(), kind, mode });
    }

    // The schema visible to SELECT / HAVING: after a window aggregate the
    // only column is `avg_<col>` / `sum_<col>`; after a GROUP BY it is the
    // key plus the aggregate output.
    let post_window_name =
        stmt.window.as_ref().map(|w| format!("{}_{}", w.func.to_ascii_lowercase(), w.column));
    let post_group_names: Option<Vec<String>> = match (&stmt.group_by, &stmt.items) {
        (Some(key), Some(items)) => {
            let mut names = vec![key.clone()];
            for item in items {
                if let SqlExpr::Aggregate { func, column } = &item.expr {
                    let out = match func.as_str() {
                        "COUNT" => "count".to_string(),
                        f => format!("{}_{column}", f.to_ascii_lowercase()),
                    };
                    // Aliases are applied by a projection that runs after
                    // HAVING, so only the raw aggregate name is visible here.
                    names.push(out);
                }
            }
            Some(names)
        }
        _ => None,
    };
    let check_column = |name: &str| -> Result<(), SqlError> {
        if let Some(visible) = &post_group_names {
            if visible.iter().any(|v| v.eq_ignore_ascii_case(name)) {
                return Ok(());
            }
            return Err(SqlError::Plan(format!(
                "column '{name}' not visible after GROUP BY (visible: {visible:?})"
            )));
        }
        if let Some(win) = &post_window_name {
            if name.eq_ignore_ascii_case(win) {
                return Ok(());
            }
            return Err(SqlError::Plan(format!(
                "column '{name}' not visible after the window aggregate (only '{win}' is)"
            )));
        }
        if let Some(schema) = schema {
            if schema.index_of(name).is_err() {
                return Err(SqlError::Plan(format!("unknown column '{name}'")));
            }
        }
        Ok(())
    };

    if let Some(p) = &stmt.predicate {
        // WHERE runs *before* the window, against the source schema.
        let check_source = |name: &str| -> Result<(), SqlError> {
            if let Some(schema) = schema {
                if schema.index_of(name).is_err() {
                    return Err(SqlError::Plan(format!("unknown column '{name}'")));
                }
            }
            Ok(())
        };
        query = query.with_predicate(lower_predicate(p, &check_source)?);
    }

    if let Some(sig) = &stmt.significance {
        let (pred, mode) = lower_sig_predicate(sig, &check_column)?;
        query = query.with_significance(pred, mode);
    }

    if let Some(key) = &stmt.group_by {
        let (spec, projections) = plan_group_by(stmt, key, schema)?;
        query = query.with_group_by(spec);
        if let Some(projections) = projections {
            query = query.with_projections(projections);
        }
    } else if let Some(items) = &stmt.items {
        let mut projections = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let expr = lower_expr(&item.expr, &check_column)?;
            let name = item.alias.clone().unwrap_or_else(|| match &expr {
                Expr::Column(c) => c.clone(),
                _ => format!("col{}", i + 1),
            });
            projections.push(Projection::new(name, expr));
        }
        query = query.with_projections(projections);
    }

    if let Some((col, desc)) = &stmt.order_by {
        // Ordering applies to the final result; with projections/group-by
        // the visible names differ from the source, so validation happens
        // at execution time.
        query = query.with_order_by(col.clone(), *desc);
    }
    if let Some(n) = stmt.limit {
        query = query.with_limit(n);
    }

    let accuracy = match &stmt.accuracy {
        None => None,
        Some(a) => Some(lower_accuracy(a)?),
    };

    Ok(PlannedQuery { from: stmt.from.clone(), query, accuracy })
}

/// Lowers a `GROUP BY` query: the SELECT list must be `*` or consist of
/// the grouping key plus exactly one aggregate call. Returns the spec and
/// optional rename projections (when the aggregate carries an alias).
fn plan_group_by(
    stmt: &SelectStmt,
    key: &str,
    schema: Option<&Schema>,
) -> Result<(GroupBySpec, Option<Vec<Projection>>), SqlError> {
    if let Some(schema) = schema {
        if schema.index_of(key).is_err() {
            return Err(SqlError::Plan(format!("unknown GROUP BY column '{key}'")));
        }
    }
    let Some(items) = &stmt.items else {
        return Err(SqlError::Plan(
            "a GROUP BY query must name its aggregate, e.g. SELECT key, AVG(x) …".into(),
        ));
    };
    let mut agg: Option<(&str, &str, Option<&str>)> = None; // (func, column, alias)
    let mut key_alias: Option<&str> = None;
    for item in items {
        match &item.expr {
            SqlExpr::Aggregate { func, column } => {
                if agg.is_some() {
                    return Err(SqlError::Plan(
                        "GROUP BY supports exactly one aggregate in the SELECT list".into(),
                    ));
                }
                if let Some(schema) = schema {
                    if schema.index_of(column).is_err() {
                        return Err(SqlError::Plan(format!(
                            "unknown aggregated column '{column}'"
                        )));
                    }
                }
                agg = Some((func, column, item.alias.as_deref()));
            }
            SqlExpr::Column(c) if c.eq_ignore_ascii_case(key) => {
                key_alias = item.alias.as_deref();
            }
            other => {
                return Err(SqlError::Plan(format!(
                    "GROUP BY SELECT items must be the key or an aggregate, found {other:?}"
                )))
            }
        }
    }
    let Some((func, column, agg_alias)) = agg else {
        return Err(SqlError::Plan("GROUP BY query lacks an aggregate".into()));
    };
    let kind = match func {
        "AVG" => GroupAggKind::Avg,
        "SUM" => GroupAggKind::Sum,
        "COUNT" => GroupAggKind::Count,
        other => return Err(SqlError::Plan(format!("unsupported aggregate {other}"))),
    };
    let spec = GroupBySpec { key: key.to_string(), column: column.to_string(), kind };
    // Rename projections only when aliases are present.
    let projections = if agg_alias.is_some() || key_alias.is_some() {
        let agg_out = match kind {
            GroupAggKind::Avg => format!("avg_{column}"),
            GroupAggKind::Sum => format!("sum_{column}"),
            GroupAggKind::Count => "count".to_string(),
        };
        Some(vec![
            Projection::new(key_alias.unwrap_or(key), Expr::col(key)),
            Projection::new(agg_alias.unwrap_or(&agg_out), Expr::col(agg_out.clone())),
        ])
    } else {
        None
    };
    Ok((spec, projections))
}

/// Parses, plans, and runs a query against a session in one call.
pub fn run_sql(
    session: &Session,
    sql: &str,
) -> Result<(Schema, Vec<Tuple>), Box<dyn std::error::Error>> {
    let stmt = parse(sql)?;
    let schema = session.schema_of(&stmt.from)?.clone();
    let planned = plan(&stmt, Some(&schema))?;
    let mut config = session.config;
    if let Some(mode) = planned.accuracy {
        config = QueryConfig { accuracy: mode, ..config };
    }
    Ok(session.run_with_config(&planned.from, &planned.query, config)?)
}

/// [`run_sql`] that also returns the pipeline's
/// [`StatsReport`](ausdb_engine::obs::StatsReport). The stats registry is
/// observational only — the `(schema, tuples)` result is bit-identical to
/// [`run_sql`] on the same session and statement.
pub fn run_sql_with_stats(
    session: &Session,
    sql: &str,
) -> Result<(Schema, Vec<Tuple>, ausdb_engine::obs::StatsReport), Box<dyn std::error::Error>> {
    let stmt = parse(sql)?;
    let schema = session.schema_of(&stmt.from)?.clone();
    let planned = plan(&stmt, Some(&schema))?;
    let mut config = session.config;
    if let Some(mode) = planned.accuracy {
        config = QueryConfig { accuracy: mode, ..config };
    }
    Ok(session.run_with_config_and_stats(&planned.from, &planned.query, config)?)
}

/// What a top-level statement produced: result rows for a SELECT, or
/// rendered plan text for `EXPLAIN` / `EXPLAIN ANALYZE`.
#[derive(Debug, Clone)]
pub enum SqlOutput {
    /// SELECT results.
    Rows {
        /// Result schema.
        schema: Schema,
        /// Result tuples.
        tuples: Vec<Tuple>,
    },
    /// Plan text, one operator per line (ANALYZE appends observed
    /// statistics to each line plus engine totals at the end).
    Plan(String),
}

/// Parses and runs a top-level statement ([`parse_statement`] grammar):
/// a SELECT executes and returns rows; `EXPLAIN` returns the plan without
/// executing; `EXPLAIN ANALYZE` executes the query and returns the plan
/// annotated with per-operator counters, drop reasons, accuracy
/// attributes (`ci_width`, `df_n`, `resamples`), and timing.
pub fn run_statement(
    session: &Session,
    sql: &str,
) -> Result<SqlOutput, Box<dyn std::error::Error>> {
    run_statement_with_stats(session, sql).map(|(out, _)| out)
}

/// [`run_statement`] that also surfaces the pipeline's
/// [`StatsReport`](ausdb_engine::obs::StatsReport) when the statement
/// executed (SELECT and EXPLAIN ANALYZE; plain EXPLAIN yields `None`).
/// Execution is observational only: the rows are bit-identical to
/// [`run_sql`] on the same session and statement.
pub fn run_statement_with_stats(
    session: &Session,
    sql: &str,
) -> Result<(SqlOutput, Option<ausdb_engine::obs::StatsReport>), Box<dyn std::error::Error>> {
    match parse_statement(sql)? {
        Statement::Select(sel) => {
            let (planned, config) = prepare(session, &sel)?;
            let (schema, tuples, report, _trace) =
                session.run_with_config_traced(&planned.from, &planned.query, config)?;
            Ok((SqlOutput::Rows { schema, tuples }, Some(report)))
        }
        Statement::Explain { analyze: false, stmt: sel } => {
            let (planned, _) = prepare(session, &sel)?;
            Ok((SqlOutput::Plan(planned.query.explain(&planned.from)), None))
        }
        Statement::Explain { analyze: true, stmt: sel } => {
            let (planned, config) = prepare(session, &sel)?;
            let (_, tuples, report, trace) =
                session.run_with_config_traced(&planned.from, &planned.query, config)?;
            let plan_text = planned.query.explain(&planned.from);
            let total_us = trace.as_ref().map(|t| t.duration_us());
            let rendered = render_analyze(&plan_text, &report, total_us, tuples.len());
            Ok((SqlOutput::Plan(rendered), Some(report)))
        }
    }
}

fn prepare(
    session: &Session,
    sel: &SelectStmt,
) -> Result<(PlannedQuery, QueryConfig), Box<dyn std::error::Error>> {
    let schema = session.schema_of(&sel.from)?.clone();
    let planned = plan(sel, Some(&schema))?;
    let mut config = session.config;
    if let Some(mode) = planned.accuracy {
        config = QueryConfig { accuracy: mode, ..config };
    }
    Ok((planned, config))
}

/// Annotates a rendered plan with observed per-operator statistics.
///
/// Each plan line names its stage (`Filter [...]`, `WindowAgg [...]`, …);
/// the first not-yet-consumed [`OpStats`](ausdb_engine::obs::OpStats)
/// with the same operator name is appended to that line. The plan always
/// says `WindowAgg` while the engine reports time-based windows as
/// `TimeWindowAgg`, so that pair is treated as one name. Stages without a
/// metrics-bearing operator (Scan, Sort, Limit) pass through untouched.
fn render_analyze(
    plan: &str,
    report: &ausdb_engine::obs::StatsReport,
    total_us: Option<u64>,
    rows: usize,
) -> String {
    let mut used = vec![false; report.ops.len()];
    let mut out = String::new();
    for line in plan.lines() {
        out.push_str(line);
        let stage = line.trim_start().split([' ', '[']).next().unwrap_or("");
        let hit = report.ops.iter().enumerate().find(|(i, op)| {
            !used[*i] && (op.name == stage || (stage == "WindowAgg" && op.name == "TimeWindowAgg"))
        });
        if let Some((i, op)) = hit {
            used[i] = true;
            out.push(' ');
            out.push_str(&op.details());
        }
        out.push('\n');
    }
    out.push_str(&format!("{}\n", report.engine));
    match total_us {
        Some(us) => out.push_str(&format!("total: {:.3}ms rows={rows}", us as f64 / 1e3)),
        None => out.push_str(&format!("total: rows={rows}")),
    }
    out
}

fn lower_expr(e: &SqlExpr, check: &dyn Fn(&str) -> Result<(), SqlError>) -> Result<Expr, SqlError> {
    Ok(match e {
        SqlExpr::Column(name) => {
            check(name)?;
            Expr::col(name.clone())
        }
        SqlExpr::Number(v) => Expr::Const(*v),
        SqlExpr::Binary { op, left, right } => {
            let op = match op {
                '+' => BinOp::Add,
                '-' => BinOp::Sub,
                '*' => BinOp::Mul,
                '/' => BinOp::Div,
                other => return Err(SqlError::Plan(format!("unknown operator {other}"))),
            };
            Expr::bin(op, lower_expr(left, check)?, lower_expr(right, check)?)
        }
        SqlExpr::SqrtAbs(inner) => Expr::un(UnaryOp::SqrtAbs, lower_expr(inner, check)?),
        SqlExpr::Square(inner) => Expr::un(UnaryOp::Square, lower_expr(inner, check)?),
        SqlExpr::Neg(inner) => Expr::un(UnaryOp::Neg, lower_expr(inner, check)?),
        SqlExpr::Aggregate { func, .. } => {
            return Err(SqlError::Plan(format!(
                "{func}(…) is only valid in the SELECT list of a GROUP BY query"
            )))
        }
    })
}

/// Constant-folds an expression, returning its value if it references no
/// columns.
fn fold_const(e: &SqlExpr) -> Option<f64> {
    match e {
        SqlExpr::Number(v) => Some(*v),
        SqlExpr::Column(_) => None,
        SqlExpr::Binary { op, left, right } => {
            let (l, r) = (fold_const(left)?, fold_const(right)?);
            Some(match op {
                '+' => l + r,
                '-' => l - r,
                '*' => l * r,
                '/' => l / r,
                _ => return None,
            })
        }
        SqlExpr::SqrtAbs(inner) => Some(fold_const(inner)?.abs().sqrt()),
        SqlExpr::Square(inner) => {
            let v = fold_const(inner)?;
            Some(v * v)
        }
        SqlExpr::Neg(inner) => Some(-fold_const(inner)?),
        SqlExpr::Aggregate { .. } => None,
    }
}

fn mirror(op: SqlCmp) -> SqlCmp {
    match op {
        SqlCmp::Lt => SqlCmp::Gt,
        SqlCmp::Le => SqlCmp::Ge,
        SqlCmp::Gt => SqlCmp::Lt,
        SqlCmp::Ge => SqlCmp::Le,
        SqlCmp::Eq => SqlCmp::Eq,
        SqlCmp::Ne => SqlCmp::Ne,
    }
}

fn to_cmp(op: SqlCmp) -> CmpOp {
    match op {
        SqlCmp::Lt => CmpOp::Lt,
        SqlCmp::Le => CmpOp::Le,
        SqlCmp::Gt => CmpOp::Gt,
        SqlCmp::Ge => CmpOp::Ge,
        SqlCmp::Eq => CmpOp::Eq,
        SqlCmp::Ne => CmpOp::Ne,
    }
}

fn lower_comparison(
    left: &SqlExpr,
    op: SqlCmp,
    right: &SqlExpr,
    prob: Option<f64>,
    check: &dyn Fn(&str) -> Result<(), SqlError>,
) -> Result<Predicate, SqlError> {
    // Normalize so the constant is on the right.
    let (expr_side, op, threshold) = match (fold_const(left), fold_const(right)) {
        (None, Some(c)) => (left, op, c),
        (Some(c), None) => (right, mirror(op), c),
        (Some(_), Some(_)) => {
            return Err(SqlError::Plan("comparison between two constants".into()))
        }
        (None, None) => {
            return Err(SqlError::Plan(
                "one side of a comparison must be constant (rewrite `a > b` as `a - b > 0`)".into(),
            ))
        }
    };
    let expr = lower_expr(expr_side, check)?;
    match prob {
        None => Ok(Predicate::compare(expr, to_cmp(op), threshold)),
        Some(tau) => {
            if !(0.0..=1.0).contains(&tau) {
                return Err(SqlError::Plan(format!("PROB threshold {tau} outside [0,1]")));
            }
            Ok(Predicate::prob_threshold(expr, to_cmp(op), threshold, tau))
        }
    }
}

fn lower_predicate(
    p: &SqlPredicate,
    check: &dyn Fn(&str) -> Result<(), SqlError>,
) -> Result<Predicate, SqlError> {
    Ok(match p {
        SqlPredicate::Compare { left, op, right, prob } => {
            lower_comparison(left, *op, right, *prob, check)?
        }
        SqlPredicate::And(l, r) => Predicate::And(
            Box::new(lower_predicate(l, check)?),
            Box::new(lower_predicate(r, check)?),
        ),
        SqlPredicate::Or(l, r) => Predicate::Or(
            Box::new(lower_predicate(l, check)?),
            Box::new(lower_predicate(r, check)?),
        ),
        SqlPredicate::Not(inner) => Predicate::Not(Box::new(lower_predicate(inner, check)?)),
    })
}

fn lower_alternative(op: &str) -> Result<Alternative, SqlError> {
    Alternative::parse(op)
        .ok_or_else(|| SqlError::Plan(format!("bad significance operator '{op}'")))
}

fn check_alpha(alpha: f64) -> Result<(), SqlError> {
    if alpha > 0.0 && alpha < 1.0 {
        Ok(())
    } else {
        Err(SqlError::Plan(format!("significance level {alpha} outside (0,1)")))
    }
}

fn sig_mode(alpha1: f64, alpha2: Option<f64>) -> Result<SigMode, SqlError> {
    check_alpha(alpha1)?;
    match alpha2 {
        None => Ok(SigMode::Basic { alpha: alpha1 }),
        Some(a2) => {
            check_alpha(a2)?;
            Ok(SigMode::Coupled {
                config: CoupledConfig { alpha1, alpha2: a2, ..CoupledConfig::default() },
                keep_unsure: false,
            })
        }
    }
}

fn lower_sig_predicate(
    sig: &SqlSigPredicate,
    check: &dyn Fn(&str) -> Result<(), SqlError>,
) -> Result<(SigPredicate, SigMode), SqlError> {
    match sig {
        SqlSigPredicate::MTest { expr, op, c, alpha1, alpha2 } => {
            let pred = SigPredicate::m_test(lower_expr(expr, check)?, lower_alternative(op)?, *c);
            Ok((pred, sig_mode(*alpha1, *alpha2)?))
        }
        SqlSigPredicate::MdTest { x, y, op, c, alpha1, alpha2 } => {
            let pred = SigPredicate::md_test(
                lower_expr(x, check)?,
                lower_expr(y, check)?,
                lower_alternative(op)?,
                *c,
            );
            Ok((pred, sig_mode(*alpha1, *alpha2)?))
        }
        SqlSigPredicate::PTest { pred, tau, alpha1, alpha2 } => {
            if !(*tau > 0.0 && *tau < 1.0) {
                return Err(SqlError::Plan(format!("pTest threshold {tau} outside (0,1)")));
            }
            let inner = lower_predicate(pred, check)?;
            Ok((SigPredicate::p_test(inner, *tau), sig_mode(*alpha1, *alpha2)?))
        }
    }
}

fn lower_accuracy(a: &SqlAccuracy) -> Result<AccuracyMode, SqlError> {
    let level = a.level.unwrap_or(0.9);
    if !(level > 0.0 && level < 1.0) {
        return Err(SqlError::Plan(format!("accuracy LEVEL {level} outside (0,1)")));
    }
    Ok(match a.mode.as_str() {
        "NONE" => AccuracyMode::None,
        "ANALYTICAL" => AccuracyMode::Analytical { level },
        "BOOTSTRAP" => AccuracyMode::Bootstrap { level, mc_values: a.samples.unwrap_or(1000) },
        other => return Err(SqlError::Plan(format!("unknown accuracy mode {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ausdb_model::schema::{Column, ColumnType};
    use ausdb_model::tuple::Field;
    use ausdb_model::{AttrDistribution, Value};

    fn road_session() -> Session {
        let schema = Schema::new(vec![
            Column::new("road_id", ColumnType::Int),
            Column::new("delay", ColumnType::Dist),
        ])
        .unwrap();
        let tuples = vec![
            Tuple::certain(
                0,
                vec![
                    Field::plain(19i64),
                    Field::learned(AttrDistribution::gaussian(64.0, 900.0).unwrap(), 3),
                ],
            ),
            Tuple::certain(
                1,
                vec![
                    Field::plain(20i64),
                    Field::learned(AttrDistribution::gaussian(65.0, 100.0).unwrap(), 50),
                ],
            ),
        ];
        let mut s = Session::new();
        s.register("t", schema, tuples);
        s
    }

    #[test]
    fn end_to_end_threshold_query() {
        let s = road_session();
        let (schema, out) =
            run_sql(&s, "SELECT road_id FROM t WHERE delay > 50 PROB 0.66").unwrap();
        assert_eq!(schema.column(0).name, "road_id");
        assert_eq!(out.len(), 2, "accuracy-oblivious threshold keeps both roads");
    }

    #[test]
    fn end_to_end_significance_query() {
        let s = road_session();
        let (_, out) =
            run_sql(&s, "SELECT road_id FROM t HAVING PTEST(delay > 50, 0.66, 0.05)").unwrap();
        assert_eq!(out.len(), 1, "significance keeps only the well-sampled road");
        assert_eq!(out[0].fields[0].value, Value::Int(20));
    }

    #[test]
    fn end_to_end_mtest_coupled() {
        let s = road_session();
        let (_, out) =
            run_sql(&s, "SELECT road_id FROM t HAVING MTEST(delay, '>', 30, 0.05, 0.05)").unwrap();
        // Road 20: (65-30)/(10/√50) huge ⇒ TRUE. Road 19: (64-30)/(30/√3) ≈
        // 1.96 > t2(0.05)=2.92? No ⇒ not TRUE.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fields[0].value, Value::Int(20));
    }

    #[test]
    fn end_to_end_window_and_accuracy_clause() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| {
                Tuple::certain(
                    i,
                    vec![Field::learned(AttrDistribution::gaussian(10.0, 1.0).unwrap(), 20)],
                )
            })
            .collect();
        let mut s = Session::new();
        s.register("s", schema, tuples);
        let (schema, out) = run_sql(
            &s,
            "SELECT avg_x FROM s WINDOW AVG(x) SIZE 4 WITH ACCURACY ANALYTICAL LEVEL 0.95",
        )
        .unwrap();
        assert_eq!(schema.column(0).name, "avg_x");
        assert_eq!(out.len(), 3);
        let info = out[0].fields[0].accuracy.as_ref().unwrap();
        let ci = info.mean_ci.unwrap();
        assert!((ci.level - 0.95).abs() < 1e-12);
    }

    #[test]
    fn constant_side_normalization() {
        let s = road_session();
        // `50 < delay` is the mirrored form of `delay > 50`.
        let (_, a) = run_sql(&s, "SELECT road_id FROM t WHERE 50 < delay PROB 0.6").unwrap();
        let (_, b) = run_sql(&s, "SELECT road_id FROM t WHERE delay > 50 PROB 0.6").unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn plan_errors() {
        let s = road_session();
        assert!(run_sql(&s, "SELECT nope FROM t").is_err());
        assert!(run_sql(&s, "SELECT road_id FROM missing").is_err());
        assert!(run_sql(&s, "SELECT road_id FROM t WHERE 1 > 2").is_err());
        assert!(run_sql(&s, "SELECT road_id FROM t WHERE delay > delay").is_err());
        assert!(run_sql(&s, "SELECT road_id FROM t WHERE delay > 50 PROB 1.5").is_err());
        assert!(run_sql(&s, "SELECT * FROM t HAVING MTEST(delay, '>', 0, 1.5)").is_err());
        assert!(run_sql(&s, "SELECT * FROM t WITH ACCURACY ANALYTICAL LEVEL 2").is_err());
        // Post-window visibility.
        assert!(run_sql(&s, "SELECT delay FROM t WINDOW AVG(delay) SIZE 2").is_err());
    }

    #[test]
    fn group_by_sql_end_to_end() {
        let schema = Schema::new(vec![
            Column::new("sensor", ColumnType::Int),
            Column::new("temp", ColumnType::Dist),
        ])
        .unwrap();
        let mk = |sensor: i64, mu: f64, n: usize| {
            Tuple::certain(
                0,
                vec![
                    Field::plain(sensor),
                    Field::learned(AttrDistribution::gaussian(mu, 1.0).unwrap(), n),
                ],
            )
        };
        let mut s = Session::new();
        s.register("r", schema, vec![mk(2, 50.0, 30), mk(1, 10.0, 20), mk(1, 14.0, 8)]);
        let (schema, out) =
            run_sql(&s, "SELECT sensor, AVG(temp) AS mean_temp FROM r GROUP BY sensor").unwrap();
        assert_eq!(schema.column(1).name, "mean_temp");
        assert_eq!(out.len(), 2);
        let d = out[0].fields[1].value.as_dist().unwrap();
        assert!((d.mean() - 12.0).abs() < 1e-12);
        // COUNT flavor.
        let (_, out) = run_sql(&s, "SELECT sensor, COUNT(temp) FROM r GROUP BY sensor").unwrap();
        assert_eq!(out[0].fields[1].value, Value::Int(2));
        assert_eq!(out[1].fields[1].value, Value::Int(1));
    }

    #[test]
    fn group_by_plan_errors() {
        let s = road_session();
        assert!(run_sql(&s, "SELECT AVG(delay) FROM t").is_err(), "aggregate without GROUP BY");
        assert!(run_sql(&s, "SELECT * FROM t GROUP BY road_id").is_err(), "no aggregate named");
        assert!(
            run_sql(&s, "SELECT road_id, delay FROM t GROUP BY road_id").is_err(),
            "non-aggregate non-key item"
        );
        assert!(
            run_sql(&s, "SELECT road_id, AVG(delay) FROM t GROUP BY nope").is_err(),
            "unknown key"
        );
        assert!(
            run_sql(
                &s,
                "SELECT road_id, AVG(delay) FROM t GROUP BY road_id WINDOW AVG(delay) SIZE 2"
            )
            .is_err(),
            "GROUP BY + WINDOW"
        );
    }

    #[test]
    fn join_sql_end_to_end() {
        let mut s = road_session();
        let limits = Schema::new(vec![
            Column::new("road_id", ColumnType::Int),
            Column::new("speed_limit", ColumnType::Float),
        ])
        .unwrap();
        s.register(
            "limits",
            limits,
            vec![Tuple::certain(0, vec![Field::plain(20i64), Field::plain(30.0)])],
        );
        let (schema, out) =
            run_sql(&s, "SELECT road_id, delay, speed_limit FROM t JOIN limits ON road_id")
                .unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fields[0].value, Value::Int(20));
        assert_eq!(out[0].fields[2].value, Value::Float(30.0));
        // Provenance survives the join + projection.
        assert_eq!(out[0].fields[1].sample_size, Some(50));
        // And predicates work over the joined schema.
        let (_, out) = run_sql(
            &s,
            "SELECT road_id FROM t JOIN limits ON road_id WHERE delay - speed_limit > 0 PROB 0.9",
        )
        .unwrap();
        assert_eq!(out.len(), 1, "Pr[delay > 30] ≈ 1 for road 20");
    }

    #[test]
    fn time_window_sql() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
        let mk = |ts: u64, mu: f64| {
            Tuple::certain(
                ts,
                vec![Field::learned(AttrDistribution::gaussian(mu, 1.0).unwrap(), 20)],
            )
        };
        let tuples = vec![mk(0, 10.0), mk(30, 20.0), mk(100, 50.0)];
        let mut s = Session::new();
        s.register("s", schema, tuples);
        let (schema, out) =
            run_sql(&s, "SELECT avg_x FROM s WINDOW AVG(x) RANGE 60 MIN 1").unwrap();
        assert_eq!(schema.column(0).name, "avg_x");
        assert_eq!(out.len(), 3);
        // The ts=100 window excludes both earlier tuples (trailing 60).
        let last = out[2].fields[0].value.as_dist().unwrap();
        assert!((last.mean() - 50.0).abs() < 1e-9);
        // MIN gates emission.
        let (_, out) = run_sql(&s, "SELECT avg_x FROM s WINDOW AVG(x) RANGE 60 MIN 2").unwrap();
        assert_eq!(out.len(), 1, "only ts=30 has 2 tuples in its trailing window");
        assert!(run_sql(&s, "SELECT avg_x FROM s WINDOW AVG(x) RANGE 0").is_err());
        assert!(run_sql(&s, "SELECT avg_x FROM s WINDOW AVG(x) SPAN 9").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let s = road_session();
        // Descending by the delay distribution's mean: road 20 (65) first.
        let (_, out) = run_sql(&s, "SELECT road_id, delay FROM t ORDER BY delay DESC").unwrap();
        assert_eq!(out[0].fields[0].value, Value::Int(20));
        assert_eq!(out[1].fields[0].value, Value::Int(19));
        let (_, out) = run_sql(&s, "SELECT road_id FROM t ORDER BY road_id ASC LIMIT 1").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fields[0].value, Value::Int(19));
        // LIMIT 0 and parse errors.
        let (_, out) = run_sql(&s, "SELECT road_id FROM t LIMIT 0").unwrap();
        assert!(out.is_empty());
        assert!(run_sql(&s, "SELECT road_id FROM t LIMIT 1.5").is_err());
        assert!(run_sql(&s, "SELECT road_id FROM t ORDER BY nope").is_err());
    }

    #[test]
    fn having_after_group_by_sees_aggregate() {
        let schema = Schema::new(vec![
            Column::new("sensor", ColumnType::Int),
            Column::new("temp", ColumnType::Dist),
        ])
        .unwrap();
        let mk = |sensor: i64, mu: f64| {
            Tuple::certain(
                0,
                vec![
                    Field::plain(sensor),
                    Field::learned(AttrDistribution::gaussian(mu, 1.0).unwrap(), 40),
                ],
            )
        };
        let mut s = Session::new();
        s.register("r", schema, vec![mk(1, 10.0), mk(2, 50.0), mk(2, 54.0)]);
        // Only sensor 2's group average is significantly above 30.
        let (_, out) = run_sql(
            &s,
            "SELECT sensor, AVG(temp) FROM r GROUP BY sensor              HAVING MTEST(avg_temp, '>', 30, 0.05, 0.05)",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fields[0].value, Value::Int(2));
        // Unknown names still rejected at plan time.
        assert!(run_sql(
            &s,
            "SELECT sensor, AVG(temp) FROM r GROUP BY sensor HAVING MTEST(temp, '>', 0, 0.05)"
        )
        .is_err());
    }

    #[test]
    fn order_by_composes_with_group_by() {
        let schema = Schema::new(vec![
            Column::new("sensor", ColumnType::Int),
            Column::new("temp", ColumnType::Dist),
        ])
        .unwrap();
        let mk = |sensor: i64, mu: f64| {
            Tuple::certain(
                0,
                vec![
                    Field::plain(sensor),
                    Field::learned(AttrDistribution::gaussian(mu, 1.0).unwrap(), 10),
                ],
            )
        };
        let mut s = Session::new();
        s.register("r", schema, vec![mk(1, 10.0), mk(2, 50.0), mk(3, 30.0)]);
        let (_, out) = run_sql(
            &s,
            "SELECT sensor, AVG(temp) FROM r GROUP BY sensor ORDER BY avg_temp DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].fields[0].value, Value::Int(2), "hottest first");
        assert_eq!(out[1].fields[0].value, Value::Int(3));
    }

    #[test]
    fn explain_returns_plan_without_executing() {
        let s = road_session();
        let out = run_statement(&s, "EXPLAIN SELECT road_id FROM t WHERE delay > 50").unwrap();
        let SqlOutput::Plan(plan) = out else { panic!("expected a plan") };
        assert!(plan.contains("Scan [t]"), "{plan}");
        assert!(plan.contains("Filter"), "{plan}");
        // No execution: no annotations, no totals line.
        assert!(!plan.contains("total:"), "{plan}");
        assert!(!plan.contains("in="), "{plan}");
        // Plain SELECT still returns rows through the same entry point.
        let (out, stats) =
            run_statement_with_stats(&s, "SELECT road_id FROM t WHERE delay > 50 PROB 0.66")
                .unwrap();
        let SqlOutput::Rows { tuples, .. } = out else { panic!("expected rows") };
        assert_eq!(tuples.len(), 2);
        assert!(stats.unwrap().op("Filter").is_some());
    }

    #[test]
    fn explain_analyze_annotates_bootstrap_query() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| {
                Tuple::certain(
                    i,
                    vec![Field::learned(AttrDistribution::gaussian(10.0, 1.0).unwrap(), 30)],
                )
            })
            .collect();
        let mut s = Session::new();
        s.register("s", schema, tuples);
        let out = run_statement(
            &s,
            "EXPLAIN ANALYZE SELECT avg_x FROM s WHERE x > 0 WINDOW AVG(x) SIZE 4              WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
        )
        .unwrap();
        let SqlOutput::Plan(plan) = out else { panic!("expected a plan") };
        // Every executed operator line carries its observed counters; the
        // window line additionally carries the accuracy attributes.
        let window = plan.lines().find(|l| l.trim_start().starts_with("WindowAgg")).unwrap();
        for needle in ["in=", "out=", "time=", "ci_width=", "df_n=30", "resamples="] {
            assert!(window.contains(needle), "missing {needle} in: {window}");
        }
        let filter = plan.lines().find(|l| l.trim_start().starts_with("Filter")).unwrap();
        assert!(filter.contains("in=6 out=6"), "{filter}");
        assert!(plan.contains("engine:"), "{plan}");
        assert!(plan.contains("rows=3"), "{plan}");
        // ANALYZE is observational: the rows match a plain run.
        let (_, plain) = run_sql(
            &s,
            "SELECT avg_x FROM s WHERE x > 0 WINDOW AVG(x) SIZE 4              WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 200",
        )
        .unwrap();
        assert_eq!(plain.len(), 3);
    }

    #[test]
    fn explain_analyze_aliases_time_window() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
        let mk = |ts: u64| {
            Tuple::certain(
                ts,
                vec![Field::learned(AttrDistribution::gaussian(5.0, 1.0).unwrap(), 10)],
            )
        };
        let mut s = Session::new();
        s.register("s", schema, vec![mk(0), mk(30), mk(100)]);
        let out =
            run_statement(&s, "EXPLAIN ANALYZE SELECT avg_x FROM s WINDOW AVG(x) RANGE 60 MIN 1")
                .unwrap();
        let SqlOutput::Plan(plan) = out else { panic!("expected a plan") };
        // The plan says WindowAgg; the engine op is TimeWindowAgg. The
        // annotation must still land on the window line.
        let window = plan.lines().find(|l| l.trim_start().starts_with("WindowAgg")).unwrap();
        assert!(window.contains("in=3 out=3"), "{window}");
    }

    #[test]
    fn projection_names() {
        let stmt = parse("SELECT delay, (delay + 1) AS bumped, delay * 2 FROM t").unwrap();
        let planned = plan(&stmt, None).unwrap();
        let names: Vec<&str> = planned.query.projections.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["delay", "bumped", "col3"]);
    }
}
