//! Walker alias method: O(1) sampling from a finite discrete distribution.
//!
//! A categorical draw by CDF walk costs O(b) per sample (or O(log b) with
//! binary search). The alias method spends O(b) once to build two tables —
//! a per-cell acceptance probability and an alias index — after which every
//! draw is one uniform index pick plus one biased coin: O(1) regardless of
//! the number of categories. Histogram attribute distributions cache one of
//! these so bulk Monte-Carlo sampling never walks the CDF.

use rand::{Rng, RngExt};

/// Precomputed Walker alias table over `n` categories.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of each cell (scaled to [0, 1]).
    prob: Vec<f64>,
    /// Donor category used when the cell's coin flip rejects.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from nonnegative weights (not necessarily
    /// normalized). Returns `None` for empty input, non-finite or negative
    /// weights, a nonpositive total, or more than `u32::MAX` categories.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return None;
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !(total > 0.0) {
            return None;
        }
        // Scale weights so the average cell holds exactly 1.0, then pair
        // each under-full cell with a donor from the over-full set.
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // The donor gives away (1 - prob[s]) of its mass.
            let leftover = prob[l as usize] - (1.0 - prob[s as usize]);
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Float round-off can leave cells in either stack; they all hold
        // (numerically) exactly their own mass.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index in O(1): a uniform cell pick plus a biased
    /// coin against the cell's acceptance probability.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn rejects_degenerate_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.1]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_none());
    }

    #[test]
    fn matches_weights_empirically() {
        let weights = [3.0, 4.0, 8.0, 5.0];
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), 4);
        let total: f64 = weights.iter().sum();
        let mut rng = seeded(91);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[table.sample_index(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = weights[k] / total;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "bin {k}: {got} vs {expect}");
        }
    }

    #[test]
    fn single_category_always_wins() {
        let table = AliasTable::new(&[2.5]).unwrap();
        let mut rng = seeded(3);
        for _ in 0..100 {
            assert_eq!(table.sample_index(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = seeded(17);
        for _ in 0..10_000 {
            let i = table.sample_index(&mut rng);
            assert!(i == 1 || i == 3, "drew zero-weight category {i}");
        }
    }
}
