//! Generic bootstrap (resampling) utilities — Section III-A.
//!
//! A bootstrap finds the sampling distribution of a statistic from a single
//! sample: draw many *resamples* with replacement, compute the statistic in
//! each, and read confidence intervals off the percentiles of the resulting
//! *bootstrap distribution*. [`Bootstrap`] packages that recipe; the query
//! engine's `BOOTSTRAP-ACCURACY-INFO` (in `ausdb-engine`) builds on the same
//! percentile-interval logic but groups Monte-Carlo outputs into de-facto
//! resamples instead of re-drawing.

use crate::ci::{percentile_interval, ConfidenceInterval};
use rand::{Rng, RngExt};

/// Draws one resample of the same size as `sample`, uniformly with
/// replacement (step (1) of Section III-A).
pub fn resample<R: Rng + ?Sized>(sample: &[f64], rng: &mut R) -> Vec<f64> {
    assert!(!sample.is_empty(), "cannot resample an empty sample");
    let n = sample.len();
    (0..n).map(|_| sample[rng.random_range(0..n)]).collect()
}

/// Configuration for a percentile bootstrap.
#[derive(Debug, Clone, Copy)]
pub struct Bootstrap {
    /// Number of resamples to draw (the paper's experiments converge well
    /// under a few hundred; 200 is the default).
    pub resamples: usize,
    /// Confidence level of the reported percentile intervals.
    pub level: f64,
}

impl Default for Bootstrap {
    fn default() -> Self {
        Self { resamples: 200, level: 0.9 }
    }
}

impl Bootstrap {
    /// Creates a bootstrap configuration.
    pub fn new(resamples: usize, level: f64) -> Self {
        assert!(resamples >= 2, "need at least 2 resamples");
        assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
        Self { resamples, level }
    }

    /// Computes the bootstrap distribution of `statistic` over the sample:
    /// one value per resample (step (2) of Section III-A).
    pub fn distribution<R, F>(&self, sample: &[f64], rng: &mut R, statistic: F) -> Vec<f64>
    where
        R: Rng + ?Sized,
        F: Fn(&[f64]) -> f64,
    {
        let mut scratch = vec![0.0; sample.len()];
        (0..self.resamples)
            .map(|_| {
                for slot in scratch.iter_mut() {
                    *slot = sample[rng.random_range(0..sample.len())];
                }
                statistic(&scratch)
            })
            .collect()
    }

    /// Percentile confidence interval of `statistic` via the bootstrap
    /// distribution.
    pub fn interval<R, F>(&self, sample: &[f64], rng: &mut R, statistic: F) -> ConfidenceInterval
    where
        R: Rng + ?Sized,
        F: Fn(&[f64]) -> f64,
    {
        let dist = self.distribution(sample, rng, statistic);
        percentile_interval(&dist, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Exponential, Normal};
    use crate::rng::seeded;
    use crate::summary::Summary;

    #[test]
    fn resample_preserves_size_and_values() {
        let sample = [3.12, 0.0, 1.57, 19.67, 0.22, 2.20]; // Example 6's data
        let mut rng = seeded(5);
        let r = resample(&sample, &mut rng);
        assert_eq!(r.len(), sample.len());
        for v in &r {
            assert!(sample.contains(v), "resample drew a foreign value {v}");
        }
    }

    #[test]
    fn bootstrap_mean_interval_covers_truth() {
        // Coverage simulation: the 90% bootstrap interval for the mean of an
        // Exponential(1) sample (n=40) should contain 1.0 in roughly 90% of
        // trials. Allow slack: percentile bootstrap under-covers slightly.
        let d = Exponential::new(1.0).unwrap();
        let mut rng = seeded(101);
        let boot = Bootstrap::new(200, 0.9);
        let trials = 300;
        let mut hits = 0;
        for _ in 0..trials {
            let sample = d.sample_n(&mut rng, 40);
            let ci = boot.interval(&sample, &mut rng, |xs| Summary::of(xs).mean());
            if ci.contains(1.0) {
                hits += 1;
            }
        }
        let cover = hits as f64 / trials as f64;
        assert!(cover > 0.80, "coverage {cover} too low");
    }

    #[test]
    fn bootstrap_distribution_center_matches_sample() {
        // The bootstrap distribution is centered on the *sample* statistic,
        // not the population value (the "biased center" of Example 6).
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = seeded(7);
        let sample = d.sample_n(&mut rng, 30);
        let sample_mean = Summary::of(&sample).mean();
        let boot = Bootstrap::new(500, 0.9);
        let dist = boot.distribution(&sample, &mut rng, |xs| Summary::of(xs).mean());
        let center = Summary::of(&dist).mean();
        assert!(
            (center - sample_mean).abs() < 0.2,
            "bootstrap center {center} should track sample mean {sample_mean}"
        );
    }

    #[test]
    #[should_panic]
    fn empty_sample_rejected() {
        let mut rng = seeded(1);
        resample(&[], &mut rng);
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let d = Normal::standard();
        let mut rng = seeded(21);
        let boot = Bootstrap::new(300, 0.9);
        let small = d.sample_n(&mut rng, 15);
        let large = d.sample_n(&mut rng, 240);
        let ci_small = boot.interval(&small, &mut rng, |xs| Summary::of(xs).mean());
        let ci_large = boot.interval(&large, &mut rng, |xs| Summary::of(xs).mean());
        assert!(ci_large.length() < ci_small.length());
    }
}
