//! Confidence-interval estimators (Lemmas 1 and 2 of the paper).
//!
//! * [`proportion_interval`] implements **Lemma 1**: the Wald
//!   normal-approximation interval when `n·p ≥ 4` and `n·(1−p) ≥ 4`
//!   (Equation 1), otherwise the Wilson score interval (Equation 2). It
//!   covers histogram bin heights and tuple membership probabilities.
//! * [`mean_interval`] implements **Lemma 2**'s mean interval: Student-t
//!   based for `n < 30` (Equation 3), z based for `n ≥ 30` (Equation 4).
//! * [`variance_interval`] implements **Lemma 2**'s χ² variance interval
//!   (Equation 5).
//! * [`percentile_interval`] is the non-parametric interval used by the
//!   bootstrap method (Section III).

use crate::dist::{ChiSquared, StudentT};
use crate::special::z_upper;
use crate::summary::quantile;

/// A two-sided confidence interval `[lo, hi]` with confidence level
/// `level ∈ (0, 1)` (e.g. 0.9 for a 90% interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Confidence level (probability the true parameter lies inside).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Creates an interval; normalizes endpoint order.
    pub fn new(lo: f64, hi: f64, level: f64) -> Self {
        assert!(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Self { lo, hi, level }
    }

    /// Interval length `hi − lo`; the paper's primary accuracy metric.
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether the true value `x` falls inside (a "hit"; outside is the
    /// paper's *miss*).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Clamps both endpoints into `[min, max]` (used for probabilities,
    /// which live in [0, 1]).
    pub fn clamped(self, min: f64, max: f64) -> Self {
        Self { lo: self.lo.clamp(min, max), hi: self.hi.clamp(min, max), level: self.level }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.4}, {:.4}] @ {:.0}%", self.lo, self.hi, self.level * 100.0)
    }
}

/// Which formula Lemma 1 selected for a proportion interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProportionMethod {
    /// Normal-approximation (Wald) interval, Equation (1).
    Wald,
    /// Wilson score interval, Equation (2).
    Wilson,
}

/// Wald (normal-approximation) interval on a proportion — Equation (1):
/// `p ± z_{(1−c)/2} · √(p(1−p)/n)`, clamped to [0, 1].
pub fn wald_proportion(p_hat: f64, n: usize, level: f64) -> ConfidenceInterval {
    assert!(n > 0, "sample size must be positive");
    assert!((0.0..=1.0).contains(&p_hat), "p̂ must be in [0,1], got {p_hat}");
    let z = z_upper((1.0 - level) / 2.0);
    let half = z * (p_hat * (1.0 - p_hat) / n as f64).sqrt();
    ConfidenceInterval::new(p_hat - half, p_hat + half, level).clamped(0.0, 1.0)
}

/// Wilson score interval on a proportion — Equation (2):
///
/// ```text
/// ( p + z²/2n ± z·√( p(1−p)/n + z²/4n² ) ) / ( 1 + z²/n )
/// ```
pub fn wilson_proportion(p_hat: f64, n: usize, level: f64) -> ConfidenceInterval {
    assert!(n > 0, "sample size must be positive");
    assert!((0.0..=1.0).contains(&p_hat), "p̂ must be in [0,1], got {p_hat}");
    let nf = n as f64;
    let z = z_upper((1.0 - level) / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = p_hat + z2 / (2.0 * nf);
    let half = z * (p_hat * (1.0 - p_hat) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ConfidenceInterval::new((center - half) / denom, (center + half) / denom, level)
        .clamped(0.0, 1.0)
}

/// **Lemma 1**: confidence interval for a bin height / proportion learned
/// from a sample of size `n`. Uses the Wald interval when the normal
/// approximation is valid (`n·p ≥ 4` and `n·(1−p) ≥ 4`), otherwise the
/// Wilson score interval.
pub fn proportion_interval(p_hat: f64, n: usize, level: f64) -> ConfidenceInterval {
    let (ci, _) = proportion_interval_with_method(p_hat, n, level);
    ci
}

/// [`proportion_interval`] that also reports which formula was selected
/// (exposed for the Wald-vs-Wilson ablation bench).
pub fn proportion_interval_with_method(
    p_hat: f64,
    n: usize,
    level: f64,
) -> (ConfidenceInterval, ProportionMethod) {
    let nf = n as f64;
    if nf * p_hat >= 4.0 && nf * (1.0 - p_hat) >= 4.0 {
        (wald_proportion(p_hat, n, level), ProportionMethod::Wald)
    } else {
        (wilson_proportion(p_hat, n, level), ProportionMethod::Wilson)
    }
}

/// **Lemma 2**, Equations (3)/(4): confidence interval for the mean from
/// sample mean `y_bar`, sample standard deviation `s`, and size `n`.
/// Student-t for `n < 30`, z for `n ≥ 30`.
pub fn mean_interval(y_bar: f64, s: f64, n: usize, level: f64) -> ConfidenceInterval {
    if n < 30 {
        mean_interval_t(y_bar, s, n, level)
    } else {
        mean_interval_z(y_bar, s, n, level)
    }
}

/// Equation (3): t-based mean interval with `n−1` degrees of freedom.
pub fn mean_interval_t(y_bar: f64, s: f64, n: usize, level: f64) -> ConfidenceInterval {
    assert!(n >= 2, "t interval requires n >= 2, got {n}");
    assert!(s >= 0.0, "standard deviation must be nonnegative");
    let t = cached_t_upper(n - 1, (1.0 - level) / 2.0);
    let half = t * s / (n as f64).sqrt();
    ConfidenceInterval::new(y_bar - half, y_bar + half, level)
}

/// Per-thread memo for the (expensive, iteration-based) t and χ² upper
/// percentiles. Streams compute intervals at the same (n, level) for
/// millions of tuples, so this turns each interval into a handful of
/// multiplications after the first tuple.
fn with_quantile_cache<T>(
    f: impl FnOnce(&mut std::collections::HashMap<(u8, usize, u64), f64>) -> T,
) -> T {
    thread_local! {
        static CACHE: std::cell::RefCell<std::collections::HashMap<(u8, usize, u64), f64>> =
            std::cell::RefCell::new(std::collections::HashMap::new());
    }
    CACHE.with(|c| f(&mut c.borrow_mut()))
}

/// Process-wide hit/miss tallies for the quantile memo, feeding the
/// engine's observability report. Cumulative over the process lifetime.
static QUANTILE_CACHE_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static QUANTILE_CACHE_MISSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// `(hits, misses)` of the t/χ² quantile memo since process start. A high
/// hit rate confirms streams reuse the same `(n, level)` pairs; a high
/// miss rate flags a workload recomputing quantiles per tuple.
pub fn quantile_cache_counters() -> (u64, u64) {
    (
        QUANTILE_CACHE_HITS.load(std::sync::atomic::Ordering::Relaxed),
        QUANTILE_CACHE_MISSES.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// Looks up (or computes and records) one memoized quantile, tallying the
/// hit or miss.
fn cached_quantile(key: (u8, usize, u64), compute: impl FnOnce() -> f64) -> f64 {
    with_quantile_cache(|cache| match cache.get(&key) {
        Some(&v) => {
            QUANTILE_CACHE_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            v
        }
        None => {
            QUANTILE_CACHE_MISSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let v = compute();
            cache.insert(key, v);
            v
        }
    })
}

/// Memoized `t_{q}` with `df` degrees of freedom.
fn cached_t_upper(df: usize, q: f64) -> f64 {
    cached_quantile((0, df, q.to_bits()), || StudentT::new(df as f64).expect("df >= 1").upper(q))
}

/// Memoized `χ²_{q}` with `df` degrees of freedom.
fn cached_chi2_upper(df: usize, q: f64) -> f64 {
    cached_quantile((1, df, q.to_bits()), || ChiSquared::new(df as f64).expect("df >= 1").upper(q))
}

/// Equation (4): z-based mean interval.
pub fn mean_interval_z(y_bar: f64, s: f64, n: usize, level: f64) -> ConfidenceInterval {
    assert!(n >= 1, "z interval requires n >= 1");
    assert!(s >= 0.0, "standard deviation must be nonnegative");
    let z = z_upper((1.0 - level) / 2.0);
    let half = z * s / (n as f64).sqrt();
    ConfidenceInterval::new(y_bar - half, y_bar + half, level)
}

/// **Lemma 2**, Equation (5): χ² confidence interval for the variance:
/// `( (n−1)s² / χ²_{(1−c)/2} ,  (n−1)s² / χ²_{(1+c)/2} )`.
pub fn variance_interval(s2: f64, n: usize, level: f64) -> ConfidenceInterval {
    assert!(n >= 2, "variance interval requires n >= 2, got {n}");
    assert!(s2 >= 0.0, "sample variance must be nonnegative");
    let num = (n as f64 - 1.0) * s2;
    let lo = num / cached_chi2_upper(n - 1, (1.0 - level) / 2.0);
    let hi = num / cached_chi2_upper(n - 1, (1.0 + level) / 2.0);
    ConfidenceInterval::new(lo, hi, level)
}

/// Percentile interval over a sample of statistic values: the span between
/// the `100·(1−α)/2` and `100·(1+α)/2` percentiles (lines 12–15 of
/// `BOOTSTRAP-ACCURACY-INFO`).
pub fn percentile_interval(values: &[f64], level: f64) -> ConfidenceInterval {
    assert!(!values.is_empty(), "percentile interval of empty sample");
    let lo = quantile(values, (1.0 - level) / 2.0);
    let hi = quantile(values, (1.0 + level) / 2.0);
    ConfidenceInterval::new(lo, hi, level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    // ---- Example 2: the paper's worked histogram-accuracy numbers ----

    #[test]
    fn example2_bucket1_wilson() {
        // n=20, p1=0.15, c=0.9 ⇒ n·p=3 < 4 ⇒ Wilson ⇒ (0.062, 0.322).
        let (ci, m) = proportion_interval_with_method(0.15, 20, 0.9);
        assert_eq!(m, ProportionMethod::Wilson);
        close(ci.lo, 0.062, 1.5e-3);
        close(ci.hi, 0.322, 1.5e-3);
    }

    #[test]
    fn example2_bucket2_wald() {
        // p2=0.2 ⇒ n·p=4 ≥ 4 ⇒ Wald ⇒ roughly (0.05, 0.35).
        let (ci, m) = proportion_interval_with_method(0.2, 20, 0.9);
        assert_eq!(m, ProportionMethod::Wald);
        close(ci.lo, 0.053, 2e-3);
        close(ci.hi, 0.347, 2e-3);
    }

    #[test]
    fn example2_buckets3_and_4() {
        let ci3 = proportion_interval(0.4, 20, 0.9);
        close(ci3.lo, 0.22, 5e-3);
        close(ci3.hi, 0.58, 5e-3);
        let ci4 = proportion_interval(0.25, 20, 0.9);
        close(ci4.lo, 0.09, 5e-3);
        close(ci4.hi, 0.41, 5e-3);
    }

    // ---- Example 3: the paper's worked mean/variance numbers ----

    #[test]
    fn example3_mean_interval() {
        // ȳ=71.1, s=8.85, n=10, c=0.9 ⇒ (65.97, 76.23) via t(9).
        let ci = mean_interval(71.1, 8.85, 10, 0.9);
        close(ci.lo, 65.97, 0.01);
        close(ci.hi, 76.23, 0.01);
    }

    #[test]
    fn example3_variance_interval() {
        // s²=78.32, n=10, c=0.9 ⇒ (41.66, 211.99).
        let ci = variance_interval(78.32, 10, 0.9);
        close(ci.lo, 41.66, 0.05);
        close(ci.hi, 211.99, 0.35);
    }

    // ---- Example 5: tuple probability interval ----

    #[test]
    fn example5_tuple_probability() {
        // p=0.6, n=20, c=0.9 ⇒ 0.6 ± 0.18 = [0.42, 0.78].
        let ci = proportion_interval(0.6, 20, 0.9);
        close(ci.lo, 0.42, 2e-3);
        close(ci.hi, 0.78, 2e-3);
    }

    // ---- structural properties ----

    #[test]
    fn lemma1_length_shrinks_with_sqrt_n() {
        // Interval length ∝ 1/√n (the paper's remark after Lemma 1).
        let l20 = proportion_interval(0.4, 20, 0.9).length();
        let l80 = proportion_interval(0.4, 80, 0.9).length();
        close(l20 / l80, 2.0, 0.05);
    }

    #[test]
    fn mean_interval_switches_at_30() {
        // At the t/z boundary the t interval is slightly wider.
        let t = mean_interval(0.0, 1.0, 29, 0.9);
        let z = mean_interval(0.0, 1.0, 30, 0.9);
        assert!(t.length() > z.length());
        // And mean_interval dispatches correctly.
        assert_eq!(t, mean_interval_t(0.0, 1.0, 29, 0.9));
        assert_eq!(z, mean_interval_z(0.0, 1.0, 30, 0.9));
    }

    #[test]
    fn variance_interval_is_positive_and_ordered() {
        let ci = variance_interval(4.0, 12, 0.95);
        assert!(ci.lo > 0.0);
        assert!(ci.lo < 4.0 && 4.0 < ci.hi, "point estimate inside {ci}");
    }

    #[test]
    fn proportion_clamped_to_unit() {
        let ci = wald_proportion(0.98, 10, 0.99);
        assert!(ci.hi <= 1.0);
        let ci = wald_proportion(0.02, 10, 0.99);
        assert!(ci.lo >= 0.0);
    }

    #[test]
    fn wilson_stays_inside_unit_by_construction() {
        for &p in &[0.0, 0.01, 0.5, 0.99, 1.0] {
            let ci = wilson_proportion(p, 5, 0.95);
            assert!(ci.lo >= 0.0 && ci.hi <= 1.0, "{ci}");
        }
    }

    #[test]
    fn percentile_interval_brackets_median() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let ci = percentile_interval(&xs, 0.9);
        close(ci.lo, 5.0, 1e-9);
        close(ci.hi, 95.0, 1e-9);
        assert!(ci.contains(50.0));
    }

    #[test]
    fn contains_and_length() {
        let ci = ConfidenceInterval::new(2.0, 1.0, 0.9); // auto-reorders
        assert_eq!(ci.lo, 1.0);
        assert!(ci.contains(1.0) && ci.contains(2.0) && ci.contains(1.5));
        assert!(!ci.contains(0.99) && !ci.contains(2.01));
        assert_eq!(ci.length(), 1.0);
        assert_eq!(ci.midpoint(), 1.5);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_level() {
        ConfidenceInterval::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn quantile_cache_counts_hits_and_misses() {
        let (_, m0) = quantile_cache_counters();
        // A (df, level) pair no other test uses: first call misses, repeats hit.
        mean_interval_t(0.0, 1.0, 23, 0.911);
        let (h1, m1) = quantile_cache_counters();
        assert!(m1 > m0, "first lookup is a miss");
        mean_interval_t(0.0, 1.0, 23, 0.911);
        mean_interval_t(0.0, 1.0, 23, 0.911);
        let (h2, _) = quantile_cache_counters();
        assert!(h2 >= h1 + 2, "repeat lookups hit the memo");
    }
}
