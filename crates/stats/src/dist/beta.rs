//! Beta distribution.

use super::{ContinuousDistribution, DistError, Gamma};
use crate::special::{inv_reg_inc_beta, ln_gamma, reg_inc_beta};
use rand::Rng;

/// Beta(α, β) distribution on (0, 1).
///
/// The natural prior/posterior family for probabilities — useful for
/// modeling uncertain tuple-membership probabilities and as the exact
/// sampling distribution behind proportion intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates Beta(α, β) with both parameters positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, DistError> {
        if !(alpha > 0.0) || !(beta > 0.0) || !alpha.is_finite() || !beta.is_finite() {
            return Err(DistError::new(format!("Beta(alpha={alpha}, beta={beta})")));
        }
        Ok(Self { alpha, beta })
    }

    /// Shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl ContinuousDistribution for Beta {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 || x >= 1.0 {
            return 0.0;
        }
        let ln_b = ln_gamma(self.alpha) + ln_gamma(self.beta) - ln_gamma(self.alpha + self.beta);
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln() - ln_b).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            reg_inc_beta(self.alpha, self.beta, x)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        inv_reg_inc_beta(self.alpha, self.beta, p)
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // X = Ga/(Ga+Gb) with Ga ~ Gamma(α,1), Gb ~ Gamma(β,1).
        let ga = Gamma::new(self.alpha, 1.0).expect("validated").sample(rng);
        let gb = Gamma::new(self.beta, 1.0).expect("validated").sample(rng);
        ga / (ga + gb)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1).
        let d = Beta::new(1.0, 1.0).unwrap();
        assert_eq!(d.mean(), 0.5);
        for &x in &[0.1, 0.5, 0.9] {
            assert!((d.cdf(x) - x).abs() < 1e-12);
            assert!((d.pdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shapes_and_moments() {
        let d = Beta::new(2.0, 5.0).unwrap();
        assert!((d.mean() - 2.0 / 7.0).abs() < 1e-12);
        assert!((d.variance() - 10.0 / (49.0 * 8.0)).abs() < 1e-12);
        check_quantile_roundtrip(&d, 1e-8);
        check_cdf_monotone(&d);
        check_moments(&d, 200_000, 53, 5.0);
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.pdf(1.0), 0.0);
        assert_eq!(d.cdf(-0.1), 0.0);
        assert_eq!(d.cdf(1.1), 1.0);
    }

    #[test]
    fn symmetric_case() {
        let d = Beta::new(3.0, 3.0).unwrap();
        assert!((d.quantile(0.5) - 0.5).abs() < 1e-9);
        assert!((d.cdf(0.3) + d.cdf(0.7) - 1.0).abs() < 1e-9);
    }
}
