//! Binomial distribution.
//!
//! Lemma 1's proof observes that the count of observations falling into a
//! histogram bucket follows `B(n, p)`; this type exists to validate that
//! reasoning (normal approximation quality, coverage simulations) and to
//! drive tuple-membership sampling.

use super::DistError;
use crate::special::{ln_gamma, reg_inc_beta};
use rand::{Rng, RngExt};

/// Binomial distribution `B(n, p)`: number of successes in `n` independent
/// Bernoulli(`p`) trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `B(n, p)` with `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, DistError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(DistError::new(format!("Binomial(n={n}, p={p})")));
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability mass `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let n = self.n as f64;
        let k = k as f64;
        let ln_choose = ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0);
        (ln_choose + k * self.p.ln() + (n - k) * (1.0 - self.p).ln()).exp()
    }

    /// Cumulative probability `Pr[X ≤ k]`, via the incomplete-beta identity.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n and all mass is at n
        }
        // Pr[X ≤ k] = I_{1-p}(n-k, k+1).
        reg_inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Expected value `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draws one sample.
    ///
    /// Direct Bernoulli summation — exact, and fast enough for the sample
    /// sizes in this system (n ≤ a few thousand).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut k = 0;
        for _ in 0..self.n {
            if rng.random::<f64>() < self.p {
                k += 1;
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn rejects_bad_params() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(15, 0.45).unwrap();
        let mut acc = 0.0;
        for k in 0..=15 {
            acc += b.pmf(k);
            assert!((b.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn degenerate_p() {
        let b0 = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.cdf(3), 1.0);
        let b1 = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b1.pmf(5), 1.0);
        assert_eq!(b1.cdf(4), 0.0);
        assert_eq!(b1.cdf(5), 1.0);
    }

    #[test]
    fn sampling_moments() {
        let b = Binomial::new(40, 0.25).unwrap();
        let mut rng = seeded(43);
        let n = 50_000;
        let mean = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - b.mean()).abs() < 0.05, "mean {mean} vs {}", b.mean());
    }
}
