//! Chi-squared distribution.

use super::{ContinuousDistribution, DistError, Gamma};
use crate::special::{inv_reg_gamma_p, ln_gamma, reg_gamma_p};
use rand::Rng;

/// Chi-squared distribution with `k` degrees of freedom.
///
/// Supplies the `χ²_{(1±c)/2}` percentiles of Lemma 2's variance interval
/// (e.g. `χ²_{0.05}(9) = 16.919` in Example 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Creates a χ² distribution with `df > 0` degrees of freedom.
    pub fn new(df: f64) -> Result<Self, DistError> {
        if !(df > 0.0) || !df.is_finite() {
            return Err(DistError::new(format!("ChiSquared(df={df})")));
        }
        Ok(Self { df })
    }

    /// Degrees of freedom k.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Value that locates an area of `q` to its **right** — the paper's
    /// `χ²_q` notation in Lemma 2, Equation (5).
    pub fn upper(&self, q: f64) -> f64 {
        self.quantile(1.0 - q)
    }
}

impl ContinuousDistribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k2 = self.df / 2.0;
        ((k2 - 1.0) * x.ln() - x / 2.0 - k2 * std::f64::consts::LN_2 - ln_gamma(k2)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_p(self.df / 2.0, x / 2.0)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        2.0 * inv_reg_gamma_p(self.df / 2.0, p)
    }

    fn mean(&self) -> f64 {
        self.df
    }

    fn variance(&self) -> f64 {
        2.0 * self.df
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // χ²(k) is Gamma(k/2, 2).
        Gamma::new(self.df / 2.0, 2.0).expect("valid df").sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(ChiSquared::new(0.0).is_err());
        assert!(ChiSquared::new(-1.0).is_err());
    }

    #[test]
    fn example3_percentiles() {
        // Example 3 uses χ²_{0.05}(9) = 16.919 (and the paper's σ² bounds
        // imply χ²_{0.95}(9) = 3.325).
        let c = ChiSquared::new(9.0).unwrap();
        assert!((c.upper(0.05) - 16.919).abs() < 1e-3, "got {}", c.upper(0.05));
        assert!((c.upper(0.95) - 3.325).abs() < 1e-3, "got {}", c.upper(0.95));
    }

    #[test]
    fn table_values() {
        // χ²_{0.025}(19) = 32.852, χ²_{0.975}(19) = 8.907.
        let c = ChiSquared::new(19.0).unwrap();
        assert!((c.upper(0.025) - 32.852).abs() < 1e-2);
        assert!((c.upper(0.975) - 8.907).abs() < 1e-2);
    }

    #[test]
    fn moments_and_roundtrip() {
        for df in [1.0, 2.0, 9.0, 30.0] {
            let c = ChiSquared::new(df).unwrap();
            assert_eq!(c.mean(), df);
            assert_eq!(c.variance(), 2.0 * df);
            check_quantile_roundtrip(&c, 1e-7);
            check_cdf_monotone(&c);
        }
        check_moments(&ChiSquared::new(5.0).unwrap(), 200_000, 41, 5.0);
    }
}
