//! Exponential distribution.

use super::{open_unit, ContinuousDistribution, DistError};
use rand::Rng;

/// Exponential distribution with rate `λ` (the paper's workload uses λ = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(DistError::new(format!("Exponential(lambda={lambda})")));
        }
        Ok(Self { lambda })
    }

    /// Rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1)");
        -(1.0 - p).ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: -ln(U)/λ with U ∈ (0, 1).
        -open_unit(rng).ln() / self.lambda
    }

    fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        // Batched inverse-CDF: hoist the 1/λ division out of the loop.
        let scale = -1.0 / self.lambda;
        for slot in out {
            *slot = scale * open_unit(rng).ln();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn analytic_shapes() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.mean(), 1.0);
        assert_eq!(d.variance(), 1.0);
        assert!((d.cdf(1.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-14);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.pdf(-0.5), 0.0);
        check_quantile_roundtrip(&d, 1e-12);
        check_cdf_monotone(&d);
        check_moments(&d, 200_000, 11, 4.0);
    }

    #[test]
    fn rate_scales_mean() {
        let d = Exponential::new(4.0).unwrap();
        assert_eq!(d.mean(), 0.25);
        assert_eq!(d.variance(), 0.0625);
        check_moments(&d, 100_000, 13, 4.0);
    }
}
