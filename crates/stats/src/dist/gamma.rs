//! Gamma distribution.

use super::{open_unit, ContinuousDistribution, DistError, Normal};
use crate::special::{inv_reg_gamma_p, ln_gamma, reg_gamma_p};
use rand::Rng;

/// Gamma distribution with shape `k` and scale `θ` (the paper's workload
/// uses k = 2, θ = 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        if !(shape > 0.0) || !(scale > 0.0) || !shape.is_finite() || !scale.is_finite() {
            return Err(DistError::new(format!("Gamma(shape={shape}, scale={scale})")));
        }
        Ok(Self { shape, scale })
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter θ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang sampler for shape ≥ 1, scale 1.
    fn sample_shape_ge1<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let std = Normal::standard();
        loop {
            let x = std.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = open_unit(rng);
            // Squeeze step, then full acceptance test.
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl ContinuousDistribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let t = self.scale;
        ((k - 1.0) * x.ln() - x / t - ln_gamma(k) - k * t.ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.scale * inv_reg_gamma_p(self.shape, p)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang; the shape<1 case boosts via G(k+1)·U^{1/k}.
        let raw = if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng)
        } else {
            let g = Self::sample_shape_ge1(self.shape + 1.0, rng);
            g * open_unit(rng).powf(1.0 / self.shape)
        };
        raw * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 2.0).is_err());
    }

    #[test]
    fn paper_workload_moments() {
        // k = 2, θ = 2 ⇒ mean 4, variance 8.
        let d = Gamma::new(2.0, 2.0).unwrap();
        assert_eq!(d.mean(), 4.0);
        assert_eq!(d.variance(), 8.0);
        check_quantile_roundtrip(&d, 1e-7);
        check_cdf_monotone(&d);
        check_moments(&d, 200_000, 17, 4.0);
    }

    #[test]
    fn shape_one_is_exponential() {
        // Gamma(1, θ) is Exponential(1/θ): CDF must match.
        let g = Gamma::new(1.0, 2.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 3.0, 8.0] {
            let expect = 1.0 - (-x / 2.0_f64).exp();
            assert!((g.cdf(x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn small_shape_sampler_is_unbiased() {
        let d = Gamma::new(0.5, 1.0).unwrap();
        check_moments(&d, 300_000, 19, 5.0);
    }
}
