//! Log-normal distribution.

use super::{ContinuousDistribution, DistError, Normal};
use rand::Rng;

/// Log-normal distribution: `ln X ~ N(μ, σ²)`.
///
/// The classic right-skewed model for travel times and delays; offered as
/// an alternative ground-truth family for the road simulator and as an
/// extra stress case for the skew-sensitivity experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-sd `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() || !(sigma > 0.0) || !sigma.is_finite() {
            return Err(DistError::new(format!("LogNormal(mu={mu}, sigma={sigma})")));
        }
        Ok(Self { mu, sigma })
    }

    /// Builds the log-normal whose *own* mean and variance are the given
    /// values (moment matching): `σ² = ln(1 + v/m²)`, `μ = ln m − σ²/2`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self, DistError> {
        if !(mean > 0.0) || !(variance > 0.0) {
            return Err(DistError::new(format!(
                "LogNormal moment match needs positive mean/variance, got ({mean}, {variance})"
            )));
        }
        let sigma2 = (1.0 + variance / (mean * mean)).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Log-scale location μ.
    pub fn log_mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale sd σ.
    pub fn log_sigma(&self) -> f64 {
        self.sigma
    }

    fn base(&self) -> Normal {
        Normal::new(self.mu, self.sigma).expect("validated parameters")
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.base().pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.base().cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.base().quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.base().sample(rng).exp()
    }

    fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        // Reuse the normal's paired Box-Muller kernel, then exponentiate
        // in place.
        self.base().sample_into(rng, out);
        for slot in out {
            *slot = slot.exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::from_mean_variance(-1.0, 1.0).is_err());
        assert!(LogNormal::from_mean_variance(1.0, 0.0).is_err());
    }

    #[test]
    fn standard_lognormal_shapes() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        // mean = e^{1/2}; median = 1.
        assert!((d.mean() - 0.5f64.exp()).abs() < 1e-12);
        assert!((d.quantile(0.5) - 1.0).abs() < 1e-9);
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        check_quantile_roundtrip(&d, 1e-9);
        check_cdf_monotone(&d);
        check_moments(&d, 400_000, 51, 6.0);
    }

    #[test]
    fn moment_matching_round_trips() {
        let d = LogNormal::from_mean_variance(120.0, 900.0).unwrap();
        assert!((d.mean() - 120.0).abs() < 1e-9);
        assert!((d.variance() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn right_skewed() {
        let d = LogNormal::new(1.0, 0.8).unwrap();
        assert!(d.mean() > d.quantile(0.5), "mean above median for right skew");
    }
}
