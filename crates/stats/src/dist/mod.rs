//! Probability distributions with density, CDF, quantile, moments and
//! sampling.
//!
//! The five continuous families (exponential, gamma, normal, uniform,
//! Weibull) are exactly the synthetic workloads of the paper's Section V;
//! Student's t and χ² drive the analytical intervals of Lemma 2; the
//! binomial justifies Lemma 1's proportion intervals.
//!
//! Every distribution implements [`ContinuousDistribution`] (or, for the
//! binomial, its own discrete API) and samples through any [`rand::Rng`],
//! so all randomness stays caller-seeded and reproducible.

mod beta;
mod binomial;
mod chi_squared;
mod exponential;
mod gamma;
mod log_normal;
mod normal;
mod student_t;
mod uniform;
mod weibull;

pub use beta::Beta;
pub use binomial::Binomial;
pub use chi_squared::ChiSquared;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use log_normal::LogNormal;
pub use normal::Normal;
pub use student_t::StudentT;
pub use uniform::Uniform;
pub use weibull::Weibull;

use rand::{Rng, RngExt};

/// Error raised when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError {
    what: String,
}

impl DistError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for DistError {}

/// A univariate continuous probability distribution.
///
/// Implementors guarantee: `cdf` is nondecreasing with limits 0 and 1,
/// `quantile(cdf(x)) ≈ x` on the support, `mean`/`variance` are the exact
/// analytic moments, and `sample` draws are distributed with density `pdf`.
pub trait ContinuousDistribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution `Pr[X ≤ x]`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Fills `out` with independent samples.
    ///
    /// The default implementation loops over [`Self::sample`]; families
    /// with a cheaper bulk form (paired Box-Muller for the normal, batched
    /// inverse-CDF for the exponential, ...) override it. Bulk kernels may
    /// consume the generator differently than repeated `sample` calls, so
    /// the two paths agree in distribution but not draw-for-draw.
    fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// Draws `n` samples into a freshly allocated vector (via the bulk
    /// [`Self::sample_into`] kernel).
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.sample_into(rng, &mut out);
        out
    }

    /// Standard deviation (`variance().sqrt()`).
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// `Pr[X > x]`, the survival function.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Draws a uniform variate in the open interval (0, 1).
///
/// Rejects exact zero so that inverse-transform samplers can take logs.
pub(crate) fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared distribution test helpers: moment checks and CDF round trips.
    use super::ContinuousDistribution;
    use crate::rng::seeded;

    /// Asserts that empirical mean/variance of `n` samples match the
    /// analytic moments within `tol` standard errors.
    pub fn check_moments<D: ContinuousDistribution>(d: &D, n: usize, seed: u64, tol: f64) {
        let mut rng = seeded(seed);
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let se_mean = (d.variance() / n as f64).sqrt();
        assert!(
            (mean - d.mean()).abs() < tol * se_mean,
            "mean: sample {mean} vs analytic {} (se {se_mean})",
            d.mean()
        );
        assert!(
            (var - d.variance()).abs() < 0.2 * d.variance() + tol * se_mean,
            "variance: sample {var} vs analytic {}",
            d.variance()
        );
    }

    /// Asserts `quantile(cdf(x)) ≈ x` over a probability grid.
    pub fn check_quantile_roundtrip<D: ContinuousDistribution>(d: &D, tol: f64) {
        for &p in &[0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            let x = d.quantile(p);
            let back = d.cdf(x);
            assert!((back - p).abs() < tol, "cdf(quantile({p})) = {back}, expected {p}");
        }
    }

    /// Asserts the CDF is nondecreasing over a sampled grid of the support.
    pub fn check_cdf_monotone<D: ContinuousDistribution>(d: &D) {
        let lo = d.quantile(0.001);
        let hi = d.quantile(0.999);
        let mut prev = 0.0;
        for i in 0..=200 {
            let x = lo + (hi - lo) * i as f64 / 200.0;
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}: {c} < {prev}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }
}
