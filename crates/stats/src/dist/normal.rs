//! Normal (Gaussian) distribution.

use super::{open_unit, ContinuousDistribution, DistError};
use crate::special::{inv_std_normal_cdf, std_normal_cdf, std_normal_pdf};
use rand::Rng;

/// Normal distribution `N(μ, σ²)`.
///
/// The paper's synthetic workload uses `N(1, 1)`; Gaussian attribute
/// distributions and the closed-form sliding-window AVG (Section V-C) also
/// run on this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)`. Requires `sigma > 0` and finite parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(DistError::new(format!("Normal(mu={mu}, sigma={sigma})")));
        }
        Ok(Self { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mu: 0.0, sigma: 1.0 }
    }

    /// Creates the normal from mean and **variance** (`σ²`).
    pub fn from_mean_variance(mu: f64, var: f64) -> Result<Self, DistError> {
        if var <= 0.0 || !var.is_finite() {
            return Err(DistError::new(format!("Normal variance {var}")));
        }
        Self::new(mu, var.sqrt())
    }

    /// Location parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * inv_std_normal_cdf(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; rejection loop accepts ~78.5% of pairs.
        loop {
            let u = 2.0 * open_unit(rng) - 1.0;
            let v = 2.0 * open_unit(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * f;
            }
        }
    }

    fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        // Paired Box-Muller: two variates per (ln, sqrt, sin_cos) group and
        // no rejection loop, so the batch runs branch-free over the buffer.
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let r = (-2.0 * open_unit(rng).ln()).sqrt();
            let (sin, cos) = (core::f64::consts::TAU * open_unit(rng)).sin_cos();
            pair[0] = self.mu + self.sigma * r * cos;
            pair[1] = self.mu + self.sigma * r * sin;
        }
        if let [last] = chunks.into_remainder() {
            let r = (-2.0 * open_unit(rng).ln()).sqrt();
            let cos = (core::f64::consts::TAU * open_unit(rng)).cos();
            *last = self.mu + self.sigma * r * cos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::from_mean_variance(0.0, 0.0).is_err());
    }

    #[test]
    fn known_cdf_values() {
        let d = Normal::standard();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((d.cdf(1.96) - 0.975).abs() < 1e-3);
        let d = Normal::new(10.0, 2.0).unwrap();
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-14);
        assert!((d.cdf(12.0) - 0.841_344_746).abs() < 1e-6);
    }

    #[test]
    fn moments_and_quantiles() {
        let d = Normal::new(1.0, 1.0).unwrap(); // the paper's N(1, 1)
        assert_eq!(d.mean(), 1.0);
        assert_eq!(d.variance(), 1.0);
        check_quantile_roundtrip(&d, 1e-10);
        check_cdf_monotone(&d);
        check_moments(&d, 200_000, 7, 4.0);
    }

    #[test]
    fn from_mean_variance_round_trips() {
        let d = Normal::from_mean_variance(3.0, 9.0).unwrap();
        assert_eq!(d.sigma(), 3.0);
        assert_eq!(d.variance(), 9.0);
    }
}
