//! Student's t distribution.

use super::{ChiSquared, ContinuousDistribution, DistError, Normal};
use crate::special::{inv_reg_inc_beta, ln_gamma, reg_inc_beta};
use rand::Rng;

/// Student's t distribution with `ν` degrees of freedom.
///
/// Supplies the `t_{(1-c)/2}` percentiles of Lemma 2 (mean interval when
/// n < 30) and the test statistics of `mTest` / `mdTest`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates a t distribution with `df > 0` degrees of freedom.
    pub fn new(df: f64) -> Result<Self, DistError> {
        if !(df > 0.0) || !df.is_finite() {
            return Err(DistError::new(format!("StudentT(df={df})")));
        }
        Ok(Self { df })
    }

    /// Degrees of freedom ν.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Upper `q` percentile: the value `t_q` with `Pr[T > t_q] = q`.
    ///
    /// Lemma 2's notation `t_{(1−c)/2}`; e.g. `t_{0.05}` with 9 d.f. is 1.833
    /// (Example 3).
    pub fn upper(&self, q: f64) -> f64 {
        self.quantile(1.0 - q)
    }
}

impl ContinuousDistribution for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_c =
            ln_gamma((v + 1.0) / 2.0) - ln_gamma(v / 2.0) - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_c - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        // Standard identity through the incomplete beta function.
        let v = self.df;
        let ib = reg_inc_beta(v / 2.0, 0.5, v / (v + x * x));
        if x >= 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        if (p - 0.5).abs() < 1e-15 {
            return 0.0;
        }
        let v = self.df;
        // Invert through the beta identity; handles both tails symmetrically.
        let tail = if p < 0.5 { p } else { 1.0 - p };
        let x = inv_reg_inc_beta(v / 2.0, 0.5, 2.0 * tail);
        let t = (v * (1.0 - x) / x).sqrt();
        if p < 0.5 {
            -t
        } else {
            t
        }
    }

    fn mean(&self) -> f64 {
        assert!(self.df > 1.0, "t mean undefined for df <= 1");
        0.0
    }

    fn variance(&self) -> f64 {
        assert!(self.df > 2.0, "t variance undefined for df <= 2");
        self.df / (self.df - 2.0)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // T = Z / sqrt(V/ν) with Z ~ N(0,1), V ~ χ²(ν).
        let z = Normal::standard().sample(rng);
        let v = ChiSquared::new(self.df).expect("valid df").sample(rng);
        z / (v / self.df).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
    }

    #[test]
    fn example3_percentile() {
        // Example 3: t_{0.05} with 9 degrees of freedom = 1.833.
        let t = StudentT::new(9.0).unwrap();
        assert!((t.upper(0.05) - 1.833).abs() < 5e-4, "got {}", t.upper(0.05));
    }

    #[test]
    fn table_values() {
        // t_{0.025}(10) = 2.228, t_{0.05}(19) = 1.729, t_{0.025}(29)=2.045.
        assert!((StudentT::new(10.0).unwrap().upper(0.025) - 2.228).abs() < 1e-3);
        assert!((StudentT::new(19.0).unwrap().upper(0.05) - 1.729).abs() < 1e-3);
        assert!((StudentT::new(29.0).unwrap().upper(0.025) - 2.045).abs() < 1e-3);
    }

    #[test]
    fn approaches_normal_for_large_df() {
        let t = StudentT::new(10_000.0).unwrap();
        assert!((t.upper(0.025) - 1.959_963_984_540_054).abs() < 1e-3);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        for df in [1.0, 2.0, 5.0, 9.0, 30.0, 120.0] {
            let t = StudentT::new(df).unwrap();
            check_quantile_roundtrip(&t, 1e-8);
            check_cdf_monotone(&t);
        }
    }

    #[test]
    fn symmetric_cdf() {
        let t = StudentT::new(7.0).unwrap();
        for &x in &[0.3, 1.0, 2.4] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_moments() {
        let t = StudentT::new(12.0).unwrap();
        check_moments(&t, 200_000, 37, 5.0);
    }
}
