//! Continuous uniform distribution.

use super::{ContinuousDistribution, DistError};
use rand::{Rng, RngExt};

/// Uniform distribution on `[lo, hi)` (the paper's workload uses U(0, 1)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform on `[lo, hi)`. Requires `lo < hi`, both finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(DistError::new(format!("Uniform(lo={lo}, hi={hi})")));
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x < self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1]");
        self.lo + p * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + rng.random::<f64>() * (self.hi - self.lo)
    }

    fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        let (lo, width) = (self.lo, self.hi - self.lo);
        for slot in out {
            *slot = lo + rng.random::<f64>() * width;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn unit_uniform_shapes() {
        // The paper notes U(0,1) has variance 1/12 — key to Fig 5(g)'s shape.
        let d = Uniform::new(0.0, 1.0).unwrap();
        assert_eq!(d.mean(), 0.5);
        assert!((d.variance() - 1.0 / 12.0).abs() < 1e-15);
        check_quantile_roundtrip(&d, 1e-12);
        check_cdf_monotone(&d);
        check_moments(&d, 100_000, 23, 4.0);
    }

    #[test]
    fn cdf_saturates_outside_support() {
        let d = Uniform::new(-2.0, 4.0).unwrap();
        assert_eq!(d.cdf(-3.0), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.pdf(5.0), 0.0);
    }
}
