//! Weibull distribution.

use super::{open_unit, ContinuousDistribution, DistError};
use crate::special::ln_gamma;
use rand::Rng;

/// Weibull distribution with scale `λ` and shape `k` (the paper's workload
/// uses λ = 1, k = 1, which coincides with Exponential(1)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull with `scale > 0` and `shape > 0`.
    pub fn new(scale: f64, shape: f64) -> Result<Self, DistError> {
        if !(scale > 0.0) || !(shape > 0.0) || !scale.is_finite() || !shape.is_finite() {
            return Err(DistError::new(format!("Weibull(scale={scale}, shape={shape})")));
        }
        Ok(Self { scale, shape })
    }

    /// Scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// `Γ(1 + r/k)`, the building block of Weibull moments.
    fn gamma_moment(&self, r: f64) -> f64 {
        ln_gamma(1.0 + r / self.shape).exp()
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1)");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * self.gamma_moment(1.0)
    }

    fn variance(&self) -> f64 {
        let m1 = self.gamma_moment(1.0);
        self.scale * self.scale * (self.gamma_moment(2.0) - m1 * m1)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: λ · (−ln U)^{1/k}.
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -1.0).is_err());
    }

    #[test]
    fn paper_workload_is_exponential() {
        // Weibull(λ=1, k=1) ≡ Exponential(1).
        let d = Weibull::new(1.0, 1.0).unwrap();
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert!((d.variance() - 1.0).abs() < 1e-10);
        for &x in &[0.2, 1.0, 2.5] {
            assert!((d.cdf(x) - (1.0 - (-x).exp())).abs() < 1e-13);
        }
        check_quantile_roundtrip(&d, 1e-12);
        check_cdf_monotone(&d);
        check_moments(&d, 200_000, 29, 4.0);
    }

    #[test]
    fn rayleigh_case() {
        // k = 2 is the Rayleigh distribution: mean = λ√π/2.
        let d = Weibull::new(3.0, 2.0).unwrap();
        let expect = 3.0 * (std::f64::consts::PI).sqrt() / 2.0;
        assert!((d.mean() - expect).abs() < 1e-10);
        check_moments(&d, 100_000, 31, 4.0);
    }
}
