//! Hypothesis tests (Section IV's statistical backbone).
//!
//! Significance predicates reduce to three classical tests:
//!
//! * [`one_sample_mean_test`] — `mTest`: H₀ `E(X) = c` vs. H₁ `E(X) op c`
//!   (population mean test; t statistic for n < 30, z otherwise, mirroring
//!   Lemma 2's switch).
//! * [`two_sample_mean_test`] — `mdTest`: H₀ `E(X) − E(Y) = c` vs.
//!   H₁ `E(X) − E(Y) op c` (Welch's unequal-variance statistic with
//!   Welch–Satterthwaite degrees of freedom).
//! * [`one_proportion_test`] — `pTest`: H₀ `Pr[pred] = τ` vs.
//!   H₁ `Pr[pred] op τ` (population proportion z test).
//!
//! Each returns a [`TestResult`] with the statistic, p-value and decision at
//! significance level α, which bounds the false-positive (type I) rate.
//! Closed-form [`power`](mean_test_power) functions support Figures 5(g/h).

use crate::dist::{ContinuousDistribution, StudentT};
use crate::special::{std_normal_cdf, z_upper};

/// The alternative hypothesis H₁'s direction (the predicate's `op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// H₁: parameter < reference (`op` = "<").
    Less,
    /// H₁: parameter > reference (`op` = ">").
    Greater,
    /// H₁: parameter ≠ reference (`op` = "<>").
    TwoSided,
}

impl Alternative {
    /// The inverse direction, used by `COUPLED-TESTS` (`>` and `<` are
    /// inverses of each other).
    ///
    /// # Panics
    /// Panics on [`Alternative::TwoSided`] — `COUPLED-TESTS` splits that case
    /// into `<` and `>` before ever inverting.
    pub fn inverse(self) -> Self {
        match self {
            Alternative::Less => Alternative::Greater,
            Alternative::Greater => Alternative::Less,
            Alternative::TwoSided => panic!("two-sided alternative has no single inverse"),
        }
    }

    /// Parses the paper's operator notation: `<`, `>`, `<>`.
    pub fn parse(op: &str) -> Option<Self> {
        match op {
            "<" => Some(Alternative::Less),
            ">" => Some(Alternative::Greater),
            "<>" | "!=" => Some(Alternative::TwoSided),
            _ => None,
        }
    }
}

impl std::fmt::Display for Alternative {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Alternative::Less => "<",
            Alternative::Greater => ">",
            Alternative::TwoSided => "<>",
        };
        f.write_str(s)
    }
}

/// Binary outcome of a single hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestDecision {
    /// The null hypothesis was rejected: H₁ is accepted.
    RejectNull,
    /// Insufficient evidence to reject H₀.
    FailToReject,
}

/// Result of running one hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (t or z value).
    pub statistic: f64,
    /// Degrees of freedom, if the statistic is t-distributed.
    pub df: Option<f64>,
    /// The p-value under H₀.
    pub p_value: f64,
    /// The significance level the decision was made at.
    pub alpha: f64,
    /// Reject H₀ (accept H₁) or not.
    pub decision: TestDecision,
}

impl TestResult {
    /// True iff H₀ was rejected, i.e. the predicate's statement is
    /// statistically significant.
    pub fn significant(&self) -> bool {
        self.decision == TestDecision::RejectNull
    }

    fn from_p(statistic: f64, df: Option<f64>, p_value: f64, alpha: f64) -> Self {
        let decision =
            if p_value < alpha { TestDecision::RejectNull } else { TestDecision::FailToReject };
        Self { statistic, df, p_value, alpha, decision }
    }
}

/// Converts a statistic into a p-value under the given alternative, using
/// either a t (when `df` is `Some`) or a standard normal reference.
fn p_value_for(statistic: f64, df: Option<f64>, alt: Alternative) -> f64 {
    let cdf = match df {
        Some(v) => StudentT::new(v).expect("positive df").cdf(statistic),
        None => std_normal_cdf(statistic),
    };
    match alt {
        Alternative::Less => cdf,
        Alternative::Greater => 1.0 - cdf,
        Alternative::TwoSided => 2.0 * cdf.min(1.0 - cdf),
    }
}

/// One-sample population mean test (the statistical core of `mTest`).
///
/// Given sample mean `y_bar`, sample standard deviation `s`, and size `n`,
/// tests H₀: `E(X) = c` against H₁: `E(X) alt c` at level `alpha`. Uses a
/// t statistic with `n−1` degrees of freedom for `n < 30`, a z statistic
/// otherwise (consistent with Lemma 2).
///
/// # Panics
/// Panics if `n < 2`, `s < 0`, or `alpha ∉ (0, 1)`.
pub fn one_sample_mean_test(
    y_bar: f64,
    s: f64,
    n: usize,
    c: f64,
    alt: Alternative,
    alpha: f64,
) -> TestResult {
    assert!(n >= 2, "mean test requires n >= 2, got {n}");
    assert!(s >= 0.0, "standard deviation must be nonnegative");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let se = s / (n as f64).sqrt();
    // A zero standard error makes the statistic ±∞; resolve by sign.
    let stat = if se == 0.0 { ((y_bar - c).signum()) * f64::INFINITY } else { (y_bar - c) / se };
    let df = if n < 30 { Some((n - 1) as f64) } else { None };
    let p = if stat.is_infinite() {
        match alt {
            Alternative::Less => {
                if stat < 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
            Alternative::Greater => {
                if stat > 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
            Alternative::TwoSided => {
                if y_bar == c {
                    1.0
                } else {
                    0.0
                }
            }
        }
    } else {
        p_value_for(stat, df, alt)
    };
    TestResult::from_p(stat, df, p, alpha)
}

/// Two-sample mean-difference test (the statistical core of `mdTest`).
///
/// Tests H₀: `E(X) − E(Y) = c` against H₁: `E(X) − E(Y) alt c` using
/// Welch's unequal-variance statistic. Degrees of freedom follow
/// Welch–Satterthwaite; for large samples (both ≥ 30) the normal reference
/// is used.
// The nine arguments mirror the statistical signature (x̄, sx, nx, ȳ, sy,
// ny, c, H₁, α); bundling them would only obscure the formula.
#[allow(clippy::too_many_arguments)]
pub fn two_sample_mean_test(
    x_bar: f64,
    sx: f64,
    nx: usize,
    y_bar: f64,
    sy: f64,
    ny: usize,
    c: f64,
    alt: Alternative,
    alpha: f64,
) -> TestResult {
    assert!(nx >= 2 && ny >= 2, "mean-difference test requires both n >= 2");
    assert!(sx >= 0.0 && sy >= 0.0, "standard deviations must be nonnegative");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let vx = sx * sx / nx as f64;
    let vy = sy * sy / ny as f64;
    let se = (vx + vy).sqrt();
    let stat = if se == 0.0 {
        ((x_bar - y_bar - c).signum()) * f64::INFINITY
    } else {
        (x_bar - y_bar - c) / se
    };
    let df = if nx >= 30 && ny >= 30 {
        None
    } else {
        // Welch–Satterthwaite approximation.
        let num = (vx + vy) * (vx + vy);
        let den = vx * vx / (nx as f64 - 1.0) + vy * vy / (ny as f64 - 1.0);
        Some(if den > 0.0 { num / den } else { (nx + ny - 2) as f64 })
    };
    let p = if stat.is_infinite() {
        if (stat > 0.0 && alt == Alternative::Greater)
            || (stat < 0.0 && alt == Alternative::Less)
            || (alt == Alternative::TwoSided && x_bar - y_bar != c)
        {
            0.0
        } else {
            1.0
        }
    } else {
        p_value_for(stat, df, alt)
    };
    TestResult::from_p(stat, df, p, alpha)
}

/// One-proportion population test (the statistical core of `pTest`).
///
/// Given the observed success fraction `p_hat` out of `n` trials, tests
/// H₀: `Pr = tau` against H₁: `Pr alt tau` with the z statistic
/// `(p̂ − τ) / √(τ(1−τ)/n)`.
pub fn one_proportion_test(
    p_hat: f64,
    n: usize,
    tau: f64,
    alt: Alternative,
    alpha: f64,
) -> TestResult {
    assert!(n > 0, "proportion test requires n > 0");
    assert!((0.0..=1.0).contains(&p_hat), "p̂ must be in [0,1]");
    assert!(tau > 0.0 && tau < 1.0, "threshold τ must be in (0,1)");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let se = (tau * (1.0 - tau) / n as f64).sqrt();
    let stat = (p_hat - tau) / se;
    let p = p_value_for(stat, None, alt);
    TestResult::from_p(stat, None, p, alpha)
}

/// Closed-form power of the one-sided z mean test.
///
/// For H₁: `μ > c` at level `alpha`, with true mean `mu_true` and standard
/// deviation `sigma`, the power is `Φ( (μ−c)/(σ/√n) − z_α )`. Used as an
/// analytic cross-check of the empirical power curves in Figure 5(g).
pub fn mean_test_power(
    mu_true: f64,
    sigma: f64,
    n: usize,
    c: f64,
    alt: Alternative,
    alpha: f64,
) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    let se = sigma / (n as f64).sqrt();
    let shift = (mu_true - c) / se;
    match alt {
        Alternative::Greater => std_normal_cdf(shift - z_upper(alpha)),
        Alternative::Less => std_normal_cdf(-shift - z_upper(alpha)),
        Alternative::TwoSided => {
            let z = z_upper(alpha / 2.0);
            std_normal_cdf(shift - z) + std_normal_cdf(-shift - z)
        }
    }
}

/// Closed-form power of the one-sided proportion z test (H₁: `p > τ`).
pub fn proportion_test_power(p_true: f64, n: usize, tau: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_true) && tau > 0.0 && tau < 1.0);
    let se0 = (tau * (1.0 - tau) / n as f64).sqrt();
    let se1 = (p_true * (1.0 - p_true) / n as f64).sqrt();
    if se1 == 0.0 {
        return if p_true > tau { 1.0 } else { 0.0 };
    }
    // Reject when p̂ > τ + z_α·se0; power = Pr over the true distribution.
    let crit = tau + z_upper(alpha) * se0;
    1.0 - std_normal_cdf((crit - p_true) / se1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    #[test]
    fn alternative_parse_and_inverse() {
        assert_eq!(Alternative::parse(">"), Some(Alternative::Greater));
        assert_eq!(Alternative::parse("<"), Some(Alternative::Less));
        assert_eq!(Alternative::parse("<>"), Some(Alternative::TwoSided));
        assert_eq!(Alternative::parse(">="), None);
        assert_eq!(Alternative::Greater.inverse(), Alternative::Less);
        assert_eq!(Alternative::Less.inverse(), Alternative::Greater);
    }

    #[test]
    #[should_panic]
    fn two_sided_has_no_inverse() {
        Alternative::TwoSided.inverse();
    }

    #[test]
    fn example8_small_sample_not_significant() {
        // X: {82, 86, 105, 110, 119}, n=5. mTest(temperature, ">", 97, 0.05)
        // should NOT be significant (Example 9: "X would not satisfy").
        let s = Summary::of(&[82.0, 86.0, 105.0, 110.0, 119.0]);
        let r = one_sample_mean_test(s.mean(), s.std_dev(), 5, 97.0, Alternative::Greater, 0.05);
        assert!(!r.significant(), "p = {}", r.p_value);
    }

    #[test]
    fn example8_large_sample_proportion_significant() {
        // Y: 60 of 100 observations above 100 ⇒ pTest("temp > 100", 0.5, 0.05)
        // should be significant (Example 9: "only Y would satisfy").
        let r = one_proportion_test(0.6, 100, 0.5, Alternative::Greater, 0.05);
        assert!(r.significant(), "p = {}", r.p_value);
        // Whereas n=5 with p̂=0.6 is not.
        let r5 = one_proportion_test(0.6, 5, 0.5, Alternative::Greater, 0.05);
        assert!(!r5.significant(), "p = {}", r5.p_value);
    }

    #[test]
    fn t_test_matches_table() {
        // ȳ=52, s=5, n=16, c=50, one-sided: t = 2/(5/4) = 1.6;
        // p = 1 - T15.cdf(1.6) ≈ 0.0652.
        let r = one_sample_mean_test(52.0, 5.0, 16, 50.0, Alternative::Greater, 0.05);
        assert!((r.statistic - 1.6).abs() < 1e-12);
        assert!((r.p_value - 0.0652).abs() < 5e-4, "p = {}", r.p_value);
        assert!(!r.significant());
    }

    #[test]
    fn z_branch_for_large_n() {
        let r = one_sample_mean_test(52.0, 5.0, 100, 50.0, Alternative::Greater, 0.05);
        assert!(r.df.is_none());
        // z = 2/(0.5) = 4 ⇒ p ≈ 3.17e-5.
        assert!((r.statistic - 4.0).abs() < 1e-12);
        assert!(r.significant());
    }

    #[test]
    fn two_sided_doubles_tail() {
        let one = one_sample_mean_test(52.0, 5.0, 16, 50.0, Alternative::Greater, 0.05);
        let two = one_sample_mean_test(52.0, 5.0, 16, 50.0, Alternative::TwoSided, 0.05);
        assert!((two.p_value - 2.0 * one.p_value).abs() < 1e-12);
    }

    #[test]
    fn welch_test_basic() {
        // Clearly separated means with decent n.
        let r = two_sample_mean_test(10.0, 2.0, 25, 7.0, 2.0, 25, 0.0, Alternative::Greater, 0.05);
        assert!(r.significant());
        assert!(r.df.is_some());
        // Welch df for equal variances/sizes = nx + ny − 2 = 48.
        assert!((r.df.unwrap() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn welch_large_samples_use_z() {
        let r = two_sample_mean_test(10.0, 2.0, 50, 9.9, 2.0, 60, 0.0, Alternative::Greater, 0.05);
        assert!(r.df.is_none());
    }

    #[test]
    fn zero_se_resolved_by_sign() {
        let r = one_sample_mean_test(5.0, 0.0, 10, 3.0, Alternative::Greater, 0.05);
        assert!(r.significant());
        let r = one_sample_mean_test(5.0, 0.0, 10, 7.0, Alternative::Greater, 0.05);
        assert!(!r.significant());
    }

    #[test]
    fn type_i_error_controlled() {
        // Simulate H0 true (μ = c): rejection rate must be ≈ α.
        use crate::dist::{ContinuousDistribution, Normal};
        use crate::rng::seeded;
        let d = Normal::new(1.0, 1.0).unwrap();
        let mut rng = seeded(99);
        let trials = 4000;
        let mut rejects = 0;
        for _ in 0..trials {
            let xs = d.sample_n(&mut rng, 20);
            let s = Summary::of(&xs);
            let r =
                one_sample_mean_test(s.mean(), s.std_dev(), 20, 1.0, Alternative::Greater, 0.05);
            if r.significant() {
                rejects += 1;
            }
        }
        let rate = rejects as f64 / trials as f64;
        assert!(rate < 0.075, "type-I rate {rate} should be near 0.05");
        assert!(rate > 0.025, "type-I rate {rate} suspiciously low");
    }

    #[test]
    fn power_increases_with_effect_and_n() {
        let p1 = mean_test_power(1.1, 1.0, 20, 1.0, Alternative::Greater, 0.05);
        let p2 = mean_test_power(1.5, 1.0, 20, 1.0, Alternative::Greater, 0.05);
        let p3 = mean_test_power(1.1, 1.0, 200, 1.0, Alternative::Greater, 0.05);
        assert!(p2 > p1, "{p2} > {p1}");
        assert!(p3 > p1, "{p3} > {p1}");
        // At zero effect the power equals alpha.
        let p0 = mean_test_power(1.0, 1.0, 20, 1.0, Alternative::Greater, 0.05);
        assert!((p0 - 0.05).abs() < 1e-9);
    }

    #[test]
    fn proportion_power_sane() {
        let low = proportion_test_power(0.55, 20, 0.5, 0.05);
        let high = proportion_test_power(0.9, 20, 0.5, 0.05);
        assert!(high > low);
        assert!(high > 0.9);
        assert!((0.0..=1.0).contains(&low));
    }
}
