//! Kolmogorov–Smirnov goodness-of-fit tests.
//!
//! An accuracy-aware system should not only report how *precise* a learned
//! distribution is (confidence intervals) but also notice when it has
//! become *wrong* — e.g. when traffic conditions shifted and fresh
//! observations no longer look like the stored distribution. The KS test
//! is the classical tool: compare an empirical sample against a reference
//! CDF (one-sample) or against another sample (two-sample), and reject
//! when the maximum CDF discrepancy is too large to be chance.

use crate::htest::{TestDecision, TestResult};

/// The asymptotic Kolmogorov distribution's survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
///
/// `Q` maps the scaled KS statistic to its p-value.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test: does `sample` look drawn from the distribution with
/// CDF `cdf`? H₀: yes. Returns the D statistic and p-value; rejects at
/// level `alpha`.
///
/// Uses the asymptotic p-value with the Stephens small-sample correction
/// `λ = (√n + 0.12 + 0.11/√n)·D`, accurate for n ≥ 5.
pub fn ks_test_one_sample<F>(sample: &[f64], cdf: F, alpha: f64) -> TestResult
where
    F: Fn(f64) -> f64,
{
    assert!(sample.len() >= 5, "KS test needs at least 5 observations");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let above = (i as f64 + 1.0) / n - f;
        let below = f - i as f64 / n;
        d = d.max(above).max(below);
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    let p = kolmogorov_q(lambda);
    TestResult {
        statistic: d,
        df: None,
        p_value: p,
        alpha,
        decision: if p < alpha { TestDecision::RejectNull } else { TestDecision::FailToReject },
    }
}

/// Two-sample KS test: were `a` and `b` drawn from the same distribution?
/// H₀: yes.
pub fn ks_test_two_sample(a: &[f64], b: &[f64], alpha: f64) -> TestResult {
    assert!(a.len() >= 5 && b.len() >= 5, "KS test needs at least 5 observations per sample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).expect("finite observations"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("finite observations"));
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p = kolmogorov_q(lambda);
    TestResult {
        statistic: d,
        df: None,
        p_value: p,
        alpha,
        decision: if p < alpha { TestDecision::RejectNull } else { TestDecision::FailToReject },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Exponential, Normal};
    use crate::rng::seeded;

    #[test]
    fn kolmogorov_q_values() {
        // Known reference points: Q(1.36) ≈ 0.049, Q(1.22) ≈ 0.10.
        assert!((kolmogorov_q(1.36) - 0.049).abs() < 0.003);
        assert!((kolmogorov_q(1.22) - 0.101).abs() < 0.005);
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(3.0) < 1e-6);
    }

    #[test]
    fn one_sample_accepts_true_distribution() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = seeded(61);
        let mut rejects = 0;
        let trials = 300;
        for _ in 0..trials {
            let xs = d.sample_n(&mut rng, 50);
            if ks_test_one_sample(&xs, |x| d.cdf(x), 0.05).significant() {
                rejects += 1;
            }
        }
        let rate = rejects as f64 / trials as f64;
        assert!(rate < 0.09, "type-I rate {rate} should be ≈ 0.05");
    }

    #[test]
    fn one_sample_rejects_wrong_distribution() {
        // Exponential data against a normal reference: must reject often.
        let d = Exponential::new(1.0).unwrap();
        let wrong = Normal::new(1.0, 1.0).unwrap();
        let mut rng = seeded(67);
        let mut rejects = 0;
        let trials = 100;
        for _ in 0..trials {
            // The exp(1)-vs-N(1,1) CDF gap peaks around 0.14, so n = 150
            // puts the critical D (≈ 1.36/√n ≈ 0.11) safely below it.
            let xs = d.sample_n(&mut rng, 150);
            if ks_test_one_sample(&xs, |x| wrong.cdf(x), 0.05).significant() {
                rejects += 1;
            }
        }
        assert!(rejects > 75, "power too low: {rejects}/{trials}");
    }

    #[test]
    fn two_sample_detects_shift() {
        let a = Normal::new(0.0, 1.0).unwrap();
        let b = Normal::new(1.2, 1.0).unwrap();
        let mut rng = seeded(71);
        let xs = a.sample_n(&mut rng, 80);
        let ys = b.sample_n(&mut rng, 80);
        assert!(ks_test_two_sample(&xs, &ys, 0.05).significant());
        // Same distribution: mostly insignificant.
        let mut rejects = 0;
        for _ in 0..200 {
            let xs = a.sample_n(&mut rng, 40);
            let ys = a.sample_n(&mut rng, 40);
            if ks_test_two_sample(&xs, &ys, 0.05).significant() {
                rejects += 1;
            }
        }
        assert!(rejects < 24, "type-I rate {} too high", rejects as f64 / 200.0);
    }

    #[test]
    fn drift_detection_use_case() {
        // The system's use: old learned sample vs fresh observations.
        let before = Normal::new(45.0, 6.0).unwrap();
        let after = Normal::new(90.0, 10.0).unwrap();
        let mut rng = seeded(73);
        let learned = before.sample_n(&mut rng, 40);
        let fresh = after.sample_n(&mut rng, 12);
        let r = ks_test_two_sample(&learned, &fresh, 0.01);
        assert!(r.significant(), "an incident this large must be detected (p = {})", r.p_value);
    }

    #[test]
    #[should_panic]
    fn tiny_samples_rejected() {
        ks_test_one_sample(&[1.0, 2.0], |x| x, 0.05);
    }
}
