//! Statistics substrate for the accuracy-aware uncertain stream database.
//!
//! This crate implements, from scratch, every piece of statistical machinery
//! the paper relies on:
//!
//! * [`special`] — special functions (log-gamma, error function, regularized
//!   incomplete gamma and beta functions) and their inverses, which underpin
//!   all distribution CDFs and quantiles.
//! * [`dist`] — probability distributions with PDF/CDF/quantile/sampling:
//!   normal, Student's t, chi-squared, exponential, gamma, uniform, Weibull,
//!   and binomial. The five continuous families are exactly the synthetic
//!   workloads of the paper's Section V, and t/χ²/normal drive the analytical
//!   confidence intervals of Lemmas 1 and 2.
//! * [`summary`] — numerically stable descriptive statistics (Welford mean /
//!   variance, order statistics and percentiles).
//! * [`ci`] — confidence-interval estimators: Wald and Wilson score intervals
//!   on proportions (Lemma 1), t/z intervals on the mean and the χ² interval
//!   on the variance (Lemma 2), and percentile intervals used by bootstraps.
//! * [`htest`] — hypothesis tests used by significance predicates
//!   (Section IV): one-sample mean test, Welch two-sample mean-difference
//!   test, one-proportion z test, plus their power functions.
//! * [`bootstrap`] — generic resampling utilities (Section III).
//! * [`alias`] — Walker alias tables for O(1) categorical draws, backing the
//!   cached histogram samplers on the batched Monte-Carlo path.
//! * [`weighted`] — weighted-sample statistics with effective sample
//!   sizes (the paper's Section VII future work).
//! * [`ks`] — Kolmogorov–Smirnov goodness-of-fit tests, used for drift
//!   detection on learned distributions.
//!
//! Everything is deterministic given a seeded RNG; see [`rng`].

#![warn(missing_docs)]
#![deny(unsafe_code)]
// Constructor validation uses `!(x > 0.0)` so NaN parameters are rejected
// alongside nonpositive ones; the suggested `partial_cmp` form hides that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod alias;
pub mod bootstrap;
pub mod ci;
pub mod dist;
pub mod htest;
pub mod ks;
pub mod rng;
pub mod special;
pub mod summary;
pub mod weighted;

pub use ci::ConfidenceInterval;
pub use dist::{ContinuousDistribution, DistError};
pub use htest::{TestDecision, TestResult};
pub use summary::Summary;
