//! Deterministic random-number helpers.
//!
//! All stochastic components of the database (samplers, bootstrap
//! resampling, Monte-Carlo query evaluation, workload generators) draw from
//! a seeded [`StdRng`] so experiments are exactly reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// Thin wrapper over [`StdRng::seed_from_u64`]; having a single constructor
/// keeps every crate in the workspace on the same generator.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-stream from a base seed and a stream index.
///
/// Mixing uses SplitMix64 so that nearby `(seed, stream)` pairs produce
/// uncorrelated generators. Used to hand each road segment / query / worker
/// its own stream without coordination.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
}

/// One round of the SplitMix64 mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn substreams_differ() {
        let mut a = substream(42, 0);
        let mut b = substream(42, 1);
        let same = (0..100).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0, "substreams should be uncorrelated");
    }
}
