//! Special functions implemented from standard numerical methods.
//!
//! These are the primitives behind every CDF and quantile in [`crate::dist`]:
//! the Lanczos approximation of `ln Γ`, series / continued-fraction forms of
//! the regularized incomplete gamma function, Lentz's algorithm for the
//! regularized incomplete beta function, the error function, and Acklam's
//! rational approximation of the inverse normal CDF (refined by one Halley
//! step). Accuracy is ~1e-12 relative over the ranges used by the database,
//! verified against known values in the unit tests.

/// Machine tolerance used as the convergence threshold of the iterative
/// series / continued-fraction evaluations.
const EPS: f64 = 1e-15;
/// A number near the smallest representable, used to clamp continued-fraction
/// denominators away from zero (Lentz's algorithm).
const FPMIN: f64 = 1e-300;
/// Iteration cap for all series/continued-fraction loops. Generous: the
/// expansions converge in tens of iterations over our parameter ranges.
const MAX_ITER: usize = 500;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to
/// ~1e-13 relative error.
///
/// # Panics
/// Panics if `x <= 0` (the database never evaluates `ln Γ` at non-positive
/// arguments; degrees of freedom and shape parameters are positive).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of a Gamma(shape `a`, scale 1) variate at `x`, and
/// of the χ² distribution via `P(k/2, x/2)`.
///
/// Returns 0 for `x <= 0`. Requires `a > 0`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_p requires a > 0, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_q requires a > 0, got {a}");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of `P(a, x)`, valid (fast-converging) for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of `Q(a, x)` (modified Lentz), valid for
/// `x >= a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Inverse of the regularized lower incomplete gamma function: finds `x`
/// with `P(a, x) = p`, for `p ∈ [0, 1)`.
///
/// Uses the Wilson–Hilferty cube-root normal approximation as the starting
/// point, then polishes with Halley iterations. This is the engine behind the
/// χ² and Gamma quantiles of Lemma 2's variance interval.
pub fn inv_reg_gamma_p(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_reg_gamma_p requires a > 0, got {a}");
    assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
    if p == 0.0 {
        return 0.0;
    }
    // Initial guess (Numerical-Recipes style).
    let a1 = a - 1.0;
    let gln = ln_gamma(a);
    let mut x: f64;
    if a > 1.0 {
        // Wilson–Hilferty.
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            z = -z;
        }
        x = (a * (1.0 - 1.0 / (9.0 * a) - z / (3.0 * a.sqrt())).powi(3)).max(1e-3);
    } else {
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            x = (p / t).powf(1.0 / a);
        } else {
            x = 1.0 - (1.0 - (p - t) / (1.0 - t)).ln();
        }
    }
    // Halley refinement on f(x) = P(a,x) - p.
    for _ in 0..20 {
        if x <= 0.0 {
            x = 1e-10;
        }
        let err = reg_gamma_p(a, x) - p;
        let lna1 = if a > 1.0 { a1.ln() } else { 0.0 };
        let afac = if a > 1.0 { (a1 * (lna1 - 1.0) - gln).exp() } else { 0.0 };
        let t = if a > 1.0 {
            afac * (-(x - a1) + a1 * (x.ln() - lna1)).exp()
        } else {
            (-x + a1 * x.ln() - gln).exp()
        };
        if t == 0.0 {
            break;
        }
        let u = err / t;
        let step = u / (1.0 - 0.5 * (u * ((a - 1.0) / x - 1.0)).min(1.0));
        x -= step;
        if x <= 0.0 {
            x = 0.5 * (x + step); // bisect back toward positive
        }
        if step.abs() < EPS * x {
            break;
        }
    }
    x
}

/// Regularized incomplete beta function `I_x(a, b)`, for `x ∈ [0, 1]`,
/// `a, b > 0`.
///
/// This is the CDF of the Beta(a, b) distribution, and via the standard
/// identity it yields Student's t and F CDFs. Continued fraction by the
/// modified Lentz method.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_contfrac(a, b, x) / a
    } else {
        1.0 - front * beta_contfrac(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Inverse of the regularized incomplete beta function: finds `x` with
/// `I_x(a, b) = p`.
///
/// Bisection bracketed on [0, 1] with Newton acceleration; robust for all
/// `a, b > 0`. Backs the Student-t quantile of Lemma 2.
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = 0.5_f64;
    for _ in 0..200 {
        let f = reg_inc_beta(a, b, x) - p;
        if f.abs() < 1e-14 {
            break;
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step using the beta PDF as derivative.
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta;
        let pdf = ln_pdf.exp();
        let mut next = x - f / pdf.max(FPMIN);
        // The negation deliberately also catches NaN (any comparison with
        // NaN is false, so `!(inside)` routes NaN to the bisection branch).
        if next <= lo || next >= hi || !next.is_finite() {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() < 1e-16 {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// Error function `erf(x)`, computed from the incomplete gamma function:
/// `erf(x) = P(1/2, x²)` for `x ≥ 0`, odd extension for `x < 0`.
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        reg_gamma_p(0.5, x * x)
    } else {
        -reg_gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, evaluated without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_gamma_q(0.5, x * x)
    } else {
        1.0 + reg_gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal PDF `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)`, for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation (|ε| < 1.15e-9) followed by one Halley
/// refinement step against [`std_normal_cdf`], giving near machine precision.
/// This provides the `z` percentiles of Lemma 1 (e.g. `z₀.₀₅ = 1.645`).
pub fn inv_std_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_std_normal_cdf requires p in (0,1), got {p}");
    // Coefficients for Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step: u = (Φ(x) - p) / φ(x); x <- x - u / (1 + x u / 2).
    let e = std_normal_cdf(x) - p;
    let u = e / std_normal_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

/// Upper `q` percentile of the standard normal: the value `z_q` with
/// `Pr[Z > z_q] = q`. This is the `z_{(1-c)/2}` notation of Lemma 1.
pub fn z_upper(q: f64) -> f64 {
    inv_std_normal_cdf(1.0 - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(0.5), (std::f64::consts::PI).sqrt().ln(), 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-11);
        close(ln_gamma(10.0), 362_880.0_f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_reflection_small() {
        // Γ(0.1) = 9.513507698668731...
        close(ln_gamma(0.1), 9.513_507_698_668_73_f64.ln(), 1e-10);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-12);
        close(erf(2.0), 0.995_322_265_018_953, 1e-12);
        close(erfc(2.0), 1.0 - 0.995_322_265_018_953, 1e-12);
        close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-20);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(std_normal_cdf(0.0), 0.5, 1e-15);
        close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-12);
        close(std_normal_cdf(-1.644_853_626_951_472), 0.05, 1e-12);
    }

    #[test]
    fn inv_normal_round_trip() {
        for &p in &[1e-10, 1e-6, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0 - 1e-6] {
            let x = inv_std_normal_cdf(p);
            close(std_normal_cdf(x), p, 1e-12);
        }
    }

    #[test]
    fn z_upper_paper_values() {
        // Lemma 1 / Example 2 use z_{0.05} = 1.645.
        close(z_upper(0.05), 1.644_853_626_951_472, 1e-9);
        close(z_upper(0.025), 1.959_963_984_540_054, 1e-9);
    }

    #[test]
    fn reg_gamma_p_q_complementary() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 2.0, 5.0, 20.0, 80.0] {
                let p = reg_gamma_p(a, x);
                let q = reg_gamma_q(a, x);
                close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn reg_gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}.
        close(reg_gamma_p(1.0, 1.0), 1.0 - (-1.0_f64).exp(), 1e-13);
        close(reg_gamma_p(1.0, 3.0), 1.0 - (-3.0_f64).exp(), 1e-13);
        // χ²(9 d.f.) upper 5% point = 16.919: P(4.5, 16.919/2) ≈ 0.95.
        close(reg_gamma_p(4.5, 16.918_977_604_620_45 / 2.0), 0.95, 1e-6);
    }

    #[test]
    fn inv_reg_gamma_p_round_trip() {
        for &a in &[0.4, 0.5, 1.0, 2.0, 4.5, 15.0, 60.0] {
            for &p in &[0.001, 0.025, 0.05, 0.3, 0.5, 0.7, 0.95, 0.975, 0.999] {
                let x = inv_reg_gamma_p(a, p);
                close(reg_gamma_p(a, x), p, 1e-8);
            }
        }
    }

    #[test]
    fn reg_inc_beta_known_values() {
        // I_x(1, 1) = x.
        close(reg_inc_beta(1.0, 1.0, 0.3), 0.3, 1e-13);
        // I_x(2, 2) = 3x² - 2x³.
        let x = 0.4;
        close(reg_inc_beta(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-13);
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        close(reg_inc_beta(3.5, 1.25, 0.7), 1.0 - reg_inc_beta(1.25, 3.5, 0.3), 1e-12);
    }

    #[test]
    fn inv_reg_inc_beta_round_trip() {
        for &(a, b) in &[(0.5, 0.5), (1.0, 3.0), (2.0, 2.0), (4.5, 0.5), (10.0, 30.0)] {
            for &p in &[0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
                let x = inv_reg_inc_beta(a, b, p);
                close(reg_inc_beta(a, b, x), p, 1e-9);
            }
        }
    }
}
