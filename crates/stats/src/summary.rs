//! Numerically stable descriptive statistics.
//!
//! [`Summary`] accumulates mean and variance with Welford's online
//! algorithm — the streaming engine updates one of these per window — and
//! free functions provide percentiles / order statistics used by bootstrap
//! percentile intervals.

/// Online accumulator for count, mean, and (sample) variance.
///
/// Welford's algorithm: one pass, no catastrophic cancellation, O(1) space.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`ȳ`). Returns 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`s²`, divisor n−1). Requires n ≥ 2.
    pub fn variance(&self) -> f64 {
        assert!(self.n >= 2, "sample variance requires at least 2 observations");
        self.m2 / (self.n as f64 - 1.0)
    }

    /// Population variance (divisor n). Requires n ≥ 1.
    pub fn population_variance(&self) -> f64 {
        assert!(self.n >= 1, "population variance requires at least 1 observation");
        self.m2 / self.n as f64
    }

    /// Sample standard deviation (`s`).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean, `s / √n`.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }
}

/// Returns the `q`-quantile (`q ∈ [0, 1]`) of `xs` using linear
/// interpolation between order statistics (type-7, the R default).
///
/// Sorts a copy; for repeated quantiles of the same data use
/// [`quantile_sorted`] on pre-sorted input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// [`quantile`] over already-sorted data.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Fraction of observations strictly greater than `threshold`.
///
/// This is the empirical `Pr[X > v]` used when learning `pTest` proportions
/// from raw samples.
pub fn frac_greater(xs: &[f64], threshold: f64) -> f64 {
    assert!(!xs.is_empty(), "frac_greater of empty slice");
    xs.iter().filter(|&&x| x > threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_summary() {
        // Example 3: ten delay observations ⇒ ȳ = 71.1, s = 8.85.
        let xs = [71.0, 56.0, 82.0, 74.0, 69.0, 77.0, 65.0, 78.0, 59.0, 80.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 71.1).abs() < 1e-12);
        assert!((s.std_dev() - 8.85).abs() < 1e-3, "s = {}", s.std_dev());
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let whole = Summary::of(&xs);
        let mut a = Summary::of(&xs[..123]);
        let b = Summary::of(&xs[123..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut s = Summary::of(&xs);
        s.merge(&Summary::new());
        assert!((s.mean() - 2.0).abs() < 1e-15);
        let mut e = Summary::new();
        e.merge(&Summary::of(&xs));
        assert!((e.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn variance_needs_two() {
        Summary::of(&[1.0]).variance();
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn frac_greater_counts_strict() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(frac_greater(&xs, 2.0), 0.5);
        assert_eq!(frac_greater(&xs, 0.0), 1.0);
        assert_eq!(frac_greater(&xs, 4.0), 0.0);
    }

    #[test]
    fn min_max_tracking() {
        let s = Summary::of(&[3.0, -1.0, 8.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 8.0);
    }
}
