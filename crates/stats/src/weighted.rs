//! Weighted-sample statistics — the paper's stated future work.
//!
//! Section VII: "we plan to study the idea of using samples of different
//! weights to quantify the accuracy of probability distributions … for
//! instance, observations that are obtained more recently can have more
//! weights in determining the accuracy information."
//!
//! This module provides that machinery. Weights are *reliability weights*
//! (an observation with weight 0.5 carries half the information of a fresh
//! one), so the natural notion of "how much data do we really have" is
//! **Kish's effective sample size**
//!
//! ```text
//! n_eff = (Σ wᵢ)² / Σ wᵢ²
//! ```
//!
//! which equals `n` for uniform weights and shrinks as weights become
//! unequal. All of Lemma 1/2's interval constructions generalize by
//! substituting `n_eff` for `n` (with fractional degrees of freedom, which
//! the t and χ² implementations support directly).

use crate::ci::ConfidenceInterval;
use crate::dist::{ChiSquared, ContinuousDistribution, StudentT};
use crate::special::z_upper;

/// Online accumulator for weighted count, mean, and variance.
///
/// Weighted Welford (West 1979): one pass, stable, O(1) space.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedSummary {
    count: u64,
    w_sum: f64,
    w2_sum: f64,
    mean: f64,
    m2: f64,
}

impl WeightedSummary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from `(value, weight)` pairs.
    pub fn of(pairs: &[(f64, f64)]) -> Self {
        let mut s = Self::new();
        for &(x, w) in pairs {
            s.push(x, w);
        }
        s
    }

    /// Adds one observation with weight `w > 0` (zero-weight observations
    /// are ignored; negative weights are rejected).
    pub fn push(&mut self, x: f64, w: f64) {
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and nonnegative");
        if w == 0.0 {
            return;
        }
        self.count += 1;
        self.w_sum += w;
        self.w2_sum += w * w;
        let delta = x - self.mean;
        self.mean += (w / self.w_sum) * delta;
        self.m2 += w * delta * (x - self.mean);
    }

    /// Number of (nonzero-weight) observations pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total weight `Σ wᵢ`.
    pub fn weight_sum(&self) -> f64 {
        self.w_sum
    }

    /// Kish's effective sample size `(Σw)²/Σw²`. Zero for an empty
    /// accumulator; equals `count` for uniform weights.
    ///
    /// Note that this measures weight *imbalance* and is scale-invariant:
    /// twenty uniformly stale observations still have Kish n = 20. To
    /// account for absolute information decay (a window of only-stale
    /// reports knows little about *now*), combine with
    /// [`WeightedSummary::weight_sum`] on a fresh-observation-equals-one
    /// scale — see [`accuracy_n`].
    pub fn effective_n(&self) -> f64 {
        if self.w2_sum == 0.0 {
            0.0
        } else {
            self.w_sum * self.w_sum / self.w2_sum
        }
    }

    /// Weighted mean `Σwx / Σw`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased weighted sample variance under reliability weights:
    /// `Σw(x−x̄)² / (Σw − Σw²/Σw)`.
    ///
    /// # Panics
    /// Panics if the effective sample size is ≤ 1 (no spread information).
    pub fn variance(&self) -> f64 {
        let denom = self.w_sum - self.w2_sum / self.w_sum;
        assert!(
            denom > 0.0,
            "weighted variance needs effective sample size > 1 (got n_eff = {})",
            self.effective_n()
        );
        self.m2 / denom
    }

    /// Weighted sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Exponential time-decay weight: an observation `age` time units old gets
/// weight `2^(−age / half_life)`.
///
/// # Panics
/// Panics unless `half_life > 0` and `age ≥ 0`.
pub fn exp_decay_weight(age: f64, half_life: f64) -> f64 {
    assert!(half_life > 0.0, "half-life must be positive");
    assert!(age >= 0.0, "age must be nonnegative");
    (-age / half_life * std::f64::consts::LN_2).exp()
}

/// The sample size that should drive accuracy intervals for weights on a
/// **fresh-observation-equals-one** scale: the smaller of Kish's effective
/// size (penalizing imbalance) and the total weight (penalizing absolute
/// staleness). Equals `n` for n fresh, uniform observations.
pub fn accuracy_n(ws: &WeightedSummary) -> f64 {
    ws.effective_n().min(ws.weight_sum())
}

/// Weighted **Lemma 2** mean interval: `x̄_w ± t·s_w/√n_eff` with
/// `n_eff − 1` (fractional) degrees of freedom for `n_eff < 30`, z above.
/// Uses Kish's effective size; for fresh-scaled weights prefer
/// [`weighted_mean_interval_with_n`] with [`accuracy_n`].
pub fn weighted_mean_interval(ws: &WeightedSummary, level: f64) -> ConfidenceInterval {
    weighted_mean_interval_with_n(ws, ws.effective_n(), level)
}

/// [`weighted_mean_interval`] with an explicit effective sample size.
pub fn weighted_mean_interval_with_n(
    ws: &WeightedSummary,
    n_eff: f64,
    level: f64,
) -> ConfidenceInterval {
    assert!(n_eff > 1.0, "need effective sample size > 1, got {n_eff}");
    let se = ws.std_dev() / n_eff.sqrt();
    let q = (1.0 - level) / 2.0;
    let crit = if n_eff < 30.0 {
        StudentT::new(n_eff - 1.0).expect("n_eff > 1").upper(q)
    } else {
        z_upper(q)
    };
    ConfidenceInterval::new(ws.mean() - crit * se, ws.mean() + crit * se, level)
}

/// Weighted **Lemma 2** variance interval: χ² with `n_eff − 1` fractional
/// degrees of freedom (Kish's effective size; see
/// [`weighted_variance_interval_with_n`]).
pub fn weighted_variance_interval(ws: &WeightedSummary, level: f64) -> ConfidenceInterval {
    weighted_variance_interval_with_n(ws, ws.effective_n(), level)
}

/// [`weighted_variance_interval`] with an explicit effective sample size.
pub fn weighted_variance_interval_with_n(
    ws: &WeightedSummary,
    n_eff: f64,
    level: f64,
) -> ConfidenceInterval {
    assert!(n_eff > 1.0, "need effective sample size > 1, got {n_eff}");
    let chi = ChiSquared::new(n_eff - 1.0).expect("positive df");
    let num = (n_eff - 1.0) * ws.variance();
    let lo = num / chi.quantile(1.0 - (1.0 - level) / 2.0);
    let hi = num / chi.quantile((1.0 - level) / 2.0);
    ConfidenceInterval::new(lo, hi, level)
}

/// Weighted **Lemma 1** proportion interval with real-valued effective
/// sample size: Wald when `n_eff·p ≥ 4` and `n_eff·(1−p) ≥ 4`, Wilson
/// otherwise.
pub fn weighted_proportion_interval(p_hat: f64, n_eff: f64, level: f64) -> ConfidenceInterval {
    assert!(n_eff > 0.0, "need positive effective sample size");
    assert!((0.0..=1.0).contains(&p_hat), "p̂ must be in [0,1]");
    let z = z_upper((1.0 - level) / 2.0);
    if n_eff * p_hat >= 4.0 && n_eff * (1.0 - p_hat) >= 4.0 {
        let half = z * (p_hat * (1.0 - p_hat) / n_eff).sqrt();
        ConfidenceInterval::new(p_hat - half, p_hat + half, level).clamped(0.0, 1.0)
    } else {
        let z2 = z * z;
        let denom = 1.0 + z2 / n_eff;
        let center = p_hat + z2 / (2.0 * n_eff);
        let half = z * (p_hat * (1.0 - p_hat) / n_eff + z2 / (4.0 * n_eff * n_eff)).sqrt();
        ConfidenceInterval::new((center - half) / denom, (center + half) / denom, level)
            .clamped(0.0, 1.0)
    }
}

/// Weighted fraction of observations strictly greater than `threshold`
/// (for weighted pTest-style proportions).
pub fn weighted_frac_greater(pairs: &[(f64, f64)], threshold: f64) -> f64 {
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    assert!(total > 0.0, "need positive total weight");
    pairs.iter().filter(|&&(x, _)| x > threshold).map(|&(_, w)| w).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    #[test]
    fn uniform_weights_match_unweighted() {
        let xs = [71.0, 56.0, 82.0, 74.0, 69.0, 77.0, 65.0, 78.0, 59.0, 80.0];
        let pairs: Vec<(f64, f64)> = xs.iter().map(|&x| (x, 1.0)).collect();
        let ws = WeightedSummary::of(&pairs);
        let s = Summary::of(&xs);
        assert!((ws.mean() - s.mean()).abs() < 1e-12);
        assert!((ws.variance() - s.variance()).abs() < 1e-9);
        assert!((ws.effective_n() - 10.0).abs() < 1e-12);
        // And the weighted Lemma 2 interval matches Example 3's numbers.
        let ci = weighted_mean_interval(&ws, 0.9);
        assert!((ci.lo - 65.97).abs() < 0.02 && (ci.hi - 76.23).abs() < 0.02, "{ci}");
    }

    #[test]
    fn scaling_weights_changes_nothing() {
        // Reliability weights are scale-free: w and 10w are equivalent.
        let pairs: Vec<(f64, f64)> = vec![(1.0, 0.2), (2.0, 0.5), (3.0, 0.3)];
        let scaled: Vec<(f64, f64)> = pairs.iter().map(|&(x, w)| (x, 10.0 * w)).collect();
        let a = WeightedSummary::of(&pairs);
        let b = WeightedSummary::of(&scaled);
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-9);
        assert!((a.effective_n() - b.effective_n()).abs() < 1e-9);
    }

    #[test]
    fn effective_n_shrinks_with_unequal_weights() {
        let uniform = WeightedSummary::of(&[(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)]);
        let skewed = WeightedSummary::of(&[(1.0, 1.0), (2.0, 0.1), (3.0, 0.1), (4.0, 0.1)]);
        assert!((uniform.effective_n() - 4.0).abs() < 1e-12);
        assert!(skewed.effective_n() < 2.0, "n_eff = {}", skewed.effective_n());
        assert!(skewed.effective_n() > 1.0);
    }

    #[test]
    fn zero_weight_ignored_negative_rejected() {
        let mut ws = WeightedSummary::new();
        ws.push(5.0, 1.0);
        ws.push(100.0, 0.0); // ignored
        assert_eq!(ws.count(), 1);
        assert_eq!(ws.mean(), 5.0);
        let result = std::panic::catch_unwind(move || {
            let mut ws = WeightedSummary::new();
            ws.push(1.0, -0.5);
        });
        assert!(result.is_err());
    }

    #[test]
    fn decay_weights() {
        assert!((exp_decay_weight(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert!((exp_decay_weight(10.0, 10.0) - 0.5).abs() < 1e-12);
        assert!((exp_decay_weight(20.0, 10.0) - 0.25).abs() < 1e-12);
        assert!(exp_decay_weight(100.0, 10.0) < 1e-3);
    }

    #[test]
    fn recency_weighting_tracks_drift() {
        // A drifting signal: old observations around 0, recent around 10.
        // Recency weights pull the weighted mean toward the recent level.
        let pairs: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let value = if i < 20 { 0.0 } else { 10.0 };
                let age = (39 - i) as f64;
                (value, exp_decay_weight(age, 5.0))
            })
            .collect();
        let ws = WeightedSummary::of(&pairs);
        let unweighted: f64 = pairs.iter().map(|&(x, _)| x).sum::<f64>() / 40.0;
        assert!((unweighted - 5.0).abs() < 1e-12);
        assert!(ws.mean() > 9.0, "weighted mean {} should track the recent level", ws.mean());
        // And the effective n is far below 40 — the system knows it is
        // effectively working from the recent handful of observations.
        assert!(ws.effective_n() < 15.0, "n_eff = {}", ws.effective_n());
    }

    #[test]
    fn weighted_intervals_widen_as_n_eff_shrinks() {
        let uniform: Vec<(f64, f64)> = (0..30).map(|i| ((i % 7) as f64, 1.0)).collect();
        let decayed: Vec<(f64, f64)> =
            (0..30).map(|i| ((i % 7) as f64, exp_decay_weight((29 - i) as f64, 4.0))).collect();
        let wu = WeightedSummary::of(&uniform);
        let wd = WeightedSummary::of(&decayed);
        let ciu = weighted_mean_interval(&wu, 0.9);
        let cid = weighted_mean_interval(&wd, 0.9);
        assert!(
            cid.length() > ciu.length(),
            "decayed interval {cid} should be wider than uniform {ciu}"
        );
    }

    #[test]
    fn weighted_variance_interval_contains_estimate() {
        let pairs: Vec<(f64, f64)> =
            (0..25).map(|i| ((i as f64).sin() * 3.0, 1.0 / (1.0 + i as f64 / 10.0))).collect();
        let ws = WeightedSummary::of(&pairs);
        let ci = weighted_variance_interval(&ws, 0.9);
        assert!(ci.lo > 0.0);
        assert!(ci.contains(ws.variance()), "{ci} should contain {}", ws.variance());
    }

    #[test]
    fn weighted_proportion_interval_matches_unweighted_at_integer_n() {
        let weighted = weighted_proportion_interval(0.6, 20.0, 0.9);
        let plain = crate::ci::proportion_interval(0.6, 20, 0.9);
        assert!((weighted.lo - plain.lo).abs() < 1e-12);
        assert!((weighted.hi - plain.hi).abs() < 1e-12);
        // Wilson branch engages at small effective n.
        let small = weighted_proportion_interval(0.1, 7.5, 0.9);
        assert!(small.lo >= 0.0 && small.hi <= 1.0);
        assert!(small.contains(0.1));
    }

    #[test]
    fn accuracy_n_penalizes_staleness() {
        // Twenty uniformly stale observations (weight 0.01 each, fresh
        // scale): Kish says 20, but the fresh-equivalent evidence is 0.2.
        let stale: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 0.01)).collect();
        let ws = WeightedSummary::of(&stale);
        assert!((ws.effective_n() - 20.0).abs() < 1e-9, "Kish is scale-invariant");
        assert!((accuracy_n(&ws) - 0.2).abs() < 1e-9, "accuracy_n caps at Σw");
        // Twenty fresh observations: both agree at 20.
        let fresh: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 1.0)).collect();
        assert!((accuracy_n(&WeightedSummary::of(&fresh)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_frac_greater_respects_weights() {
        let pairs = [(1.0, 3.0), (10.0, 1.0)];
        assert!((weighted_frac_greater(&pairs, 5.0) - 0.25).abs() < 1e-12);
        assert_eq!(weighted_frac_greater(&pairs, 0.0), 1.0);
    }

    #[test]
    fn weighted_mean_coverage_simulation() {
        // 90% weighted intervals over decayed iid normal data should cover
        // the true mean near-nominally (weights are independent of values).
        use crate::dist::{ContinuousDistribution, Normal};
        use crate::rng::seeded;
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = seeded(303);
        let trials = 600;
        let mut hits = 0;
        for _ in 0..trials {
            let pairs: Vec<(f64, f64)> =
                (0..25).map(|i| (d.sample(&mut rng), exp_decay_weight(i as f64, 12.0))).collect();
            let ws = WeightedSummary::of(&pairs);
            if weighted_mean_interval(&ws, 0.9).contains(5.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage > 0.84, "coverage {coverage} too far below 0.90");
    }
}
