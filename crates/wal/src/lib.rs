//! `ausdb-wal` — a segmented, append-only write-ahead log of ingest
//! batches.
//!
//! Snapshots give the server bit-exact kill-and-restore, but every row
//! ingested since the last snapshot dies with the process. This crate
//! closes that gap: the server appends every accepted `INGEST`/`INGESTB`
//! batch here **before** applying it, so recovery is
//!
//! ```text
//! latest snapshot  +  replay of WAL records with seq > snapshot watermark
//! ```
//!
//! and a `kill -9` mid-window answers the next window close byte-
//! identically to an uninterrupted run.
//!
//! ## Record format
//!
//! Records reuse the AUSB frame discipline from [`ausdb_model::codec`]:
//! little-endian integers, `f64` bit patterns (NaN payloads, ±inf and
//! `-0.0` survive exactly), and a per-record CRC-32:
//!
//! ```text
//! len u32 · body · crc32(body) u32
//! body := seq u64 · stream str · count u32 · count × (key i64 · ts u64 · value f64-bits)
//! ```
//!
//! Batches are logged **pre-routing** — the raw `(stream, rows)` pair as
//! accepted from the wire, before any key-shard split — so replay
//! re-partitions correctly under any `--shards N`.
//!
//! ## Segments
//!
//! Records append to `wal-<first_seq>.ausw` files (20-digit zero-padded
//! sequence numbers, so lexicographic order is replay order). Each
//! segment starts with an `AUSW` header carrying the format version and
//! the first sequence number it holds; when the active segment passes
//! [`WalOptions::segment_bytes`] it is sealed and a new one starts.
//! [`Wal::truncate_through`] (called after a successful snapshot) deletes
//! every segment made obsolete by the snapshot watermark.
//!
//! ## Torn tails
//!
//! [`Wal::open`] scans every segment. A record in the *last* segment that
//! is incomplete or fails its CRC is a torn tail from a crash mid-write:
//! the file is truncated back to the last valid record and appends
//! resume from there — replay stops cleanly at the last record that was
//! fully on disk, never at garbage. Corruption in a *sealed* segment is
//! not a torn write and refuses to open (`InvalidData`).
//!
//! ## Fsync policy
//!
//! `AUSDB_FSYNC` picks the durability/throughput trade
//! ([`FsyncPolicy::from_env`]):
//!
//! | value    | behavior                                                      |
//! |----------|---------------------------------------------------------------|
//! | `always` | fsync after every record — no accepted batch is ever lost     |
//! | `batch`  | group commit: background fdatasync every [`WalOptions::batch_bytes`]; sync on seal/flush (default) |
//! | `never`  | leave write-back to the OS; crash may lose the page-cache tail|

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fs::{File, OpenOptions};
use std::io::{self, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ausdb_model::codec::{crc32, CodecError, FrameRow, Reader, Writer, FORMAT_VERSION};
use ausdb_obs::hist::log_linear_bounds;
use ausdb_obs::{journal, Counter, Gauge, Histogram, Level, Registry};

/// Leading magic bytes of every WAL segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"AUSW";
/// Segment file extension.
pub const SEGMENT_EXT: &str = "ausw";
/// Segment header: magic (4) + version (2) + first_seq (8).
const SEGMENT_HEADER_BYTES: u64 = 4 + 2 + 8;
/// Sanity cap on one record's encoded body (a full 2²⁰-row frame is
/// ~24 MB; anything bigger is broken or hostile).
const MAX_RECORD_BYTES: usize = ausdb_model::codec::MAX_FRAME_ROWS * 24 + 1024;

/// One logged ingest batch: the exact `(stream, rows)` pair the server
/// accepted, stamped with its WAL sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number (1-based across the whole log).
    pub seq: u64,
    /// Target stream name as accepted (already normalized by the server).
    pub stream: String,
    /// Raw `(key, ts, value)` rows, pre-routing.
    pub rows: Vec<FrameRow>,
}

/// When the log fsyncs (`AUSDB_FSYNC`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every appended record.
    Always,
    /// Group commit (the default): once [`WalOptions::batch_bytes`] of
    /// unsynced log accumulate, an fdatasync is *initiated* on a cloned
    /// file handle in a background thread so appends keep flowing while
    /// the disk catches up. Segment seal and [`Wal::flush`] still sync
    /// synchronously (they are durability points); a background sync
    /// failure poisons the log, surfacing on the next append or flush.
    #[default]
    Batch,
    /// Never fsync (explicit [`Wal::flush`] still syncs); the OS decides
    /// when bytes hit the platter.
    Never,
}

impl FsyncPolicy {
    /// Reads `AUSDB_FSYNC` (`always` | `batch` | `never`, case-insensitive);
    /// unset or invalid values fall back to `batch` (invalid warns once).
    pub fn from_env() -> Self {
        static KNOB: ausdb_obs::knobs::Knob = ausdb_obs::knobs::Knob::new("AUSDB_FSYNC");
        KNOB.from_env(Self::parse, FsyncPolicy::Batch)
    }

    /// Parses a policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The canonical knob value for this policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Metric handles the log updates as it runs; create one per registry
/// with [`WalTelemetry::new`] and pass it in [`WalOptions::telemetry`].
#[derive(Debug, Clone)]
pub struct WalTelemetry {
    fsync_latency: Arc<Histogram>,
    segments: Arc<Gauge>,
    bytes: Arc<Gauge>,
    records: Arc<Counter>,
    fsyncs: Arc<Counter>,
}

impl WalTelemetry {
    /// Registers the WAL metric families on `registry`.
    pub fn new(registry: &Registry) -> Self {
        let latency = log_linear_bounds(-6, 1);
        Self {
            fsync_latency: registry.histogram(
                "ausdb_wal_fsync_seconds",
                "WAL fsync latency",
                &latency,
                &[],
            ),
            segments: registry.gauge(
                "ausdb_wal_segments",
                "WAL segment files on disk (including the active one)",
                &[],
            ),
            bytes: registry.gauge("ausdb_wal_bytes", "Total WAL bytes on disk", &[]),
            records: registry.counter(
                "ausdb_wal_records_total",
                "Ingest batches appended to the WAL",
                &[],
            ),
            fsyncs: registry.counter("ausdb_wal_fsyncs_total", "WAL fsync calls", &[]),
        }
    }
}

/// Tunables for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// When to fsync (see [`FsyncPolicy`]).
    pub policy: FsyncPolicy,
    /// Seal the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Under [`FsyncPolicy::Batch`], fsync once this many unsynced bytes
    /// accumulate.
    pub batch_bytes: u64,
    /// Metric handles to keep updated (optional).
    pub telemetry: Option<WalTelemetry>,
}

impl WalOptions {
    /// Defaults: `batch` policy (or `AUSDB_FSYNC`), 64 MiB segments,
    /// 4 MiB fsync batches, no telemetry. The batch window is sized so
    /// grouped syncs stay well off the ingest hot path at full INGESTB
    /// rate (callers wanting a tighter crash window use `always` or
    /// shrink `batch_bytes`); segments are large because every seal is a
    /// *synchronous* sync — sealed segments must be durable before later
    /// ones fill, or a crash could leave a hole mid-log.
    pub fn new() -> Self {
        Self {
            policy: FsyncPolicy::from_env(),
            segment_bytes: 64 * 1024 * 1024,
            batch_bytes: 4 * 1024 * 1024,
            telemetry: None,
        }
    }
}

impl Default for WalOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time WAL state, surfaced by the server's `WALSTAT` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Segment files on disk, including the active one.
    pub segments: usize,
    /// Total bytes across all segment files.
    pub bytes: u64,
    /// Sequence number of the newest record ever appended (0 if none).
    pub last_seq: u64,
    /// Sequence number of the oldest record still on disk, or
    /// `last_seq + 1` when the log holds no records.
    pub first_seq: u64,
    /// Fsync calls **completed** so far (a background group commit
    /// counts only once its fdatasync returns).
    pub fsyncs: u64,
    /// Bytes appended but not yet confirmed durable, including bytes
    /// handed to a still-running background group commit.
    pub unsynced: u64,
}

/// A sealed (no longer written) segment.
#[derive(Debug)]
struct SealedSegment {
    path: PathBuf,
    first_seq: u64,
    last_seq: u64,
    bytes: u64,
}

/// The append-only log: one active segment plus zero or more sealed ones.
///
/// Not internally locked — the server wraps it in a mutex and holds it
/// across the append-then-apply critical section so log order equals
/// apply order.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    sealed: Vec<SealedSegment>,
    active: File,
    active_path: PathBuf,
    active_first: u64,
    active_len: u64,
    active_records: u64,
    next_seq: u64,
    unsynced: u64,
    /// Bytes handed to the in-flight background group commit; not yet
    /// durable, so still reported as unsynced until the fdatasync
    /// completes (observed via `sync_in_flight` clearing).
    bg_dispatched: u64,
    /// Completed fsync calls. Shared with the group-commit thread so the
    /// count only moves when an fdatasync actually returns, never when
    /// one is merely initiated.
    fsyncs: Arc<AtomicU64>,
    /// Reused encode scratch — appends on the hot path allocate nothing.
    encode_buf: Vec<u8>,
    /// A background group-commit fdatasync is still running.
    sync_in_flight: Arc<AtomicBool>,
    /// A background fdatasync failed; the log is poisoned until reopened.
    sync_failed: Arc<AtomicBool>,
}

/// What a startup scan of one segment found.
struct SegmentScan {
    first_seq: u64,
    records: u64,
    last_seq: u64,
    /// Bytes up to and including the last valid record.
    valid_bytes: u64,
    /// Bytes actually in the file (> `valid_bytes` means a torn tail).
    file_bytes: u64,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Encodes one record with its length prefix and trailing CRC-32.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_record_into(&mut buf, rec.seq, &rec.stream, rec.rows.iter().copied());
    buf
}

/// Encodes one record straight into `buf` (cleared first) in a single
/// pass — the body length is computable upfront, so there is no
/// intermediate body buffer and no second copy. Byte-identical to what
/// [`Writer`]-based encoding produced ([`decode_record`] is the oracle;
/// the unit tests pin the layout).
fn encode_record_into<I>(buf: &mut Vec<u8>, seq: u64, stream: &str, rows: I)
where
    I: ExactSizeIterator<Item = FrameRow>,
{
    buf.clear();
    // body: seq u64 · (len u32 + bytes) stream · count u32 · count × 24.
    let body_len = 8 + 4 + stream.len() + 4 + rows.len() * 24;
    buf.reserve(4 + body_len + 4);
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(stream.len() as u32).to_le_bytes());
    buf.extend_from_slice(stream.as_bytes());
    buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for (key, ts, value) in rows {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&ts.to_le_bytes());
        buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    debug_assert_eq!(buf.len(), 4 + body_len);
    let crc = crc32(&buf[4..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes one record from the front of `bytes`, returning it with the
/// number of bytes consumed. Fails structurally (never panics) on
/// truncation, oversized lengths, CRC mismatch, or malformed bodies.
pub fn decode_record(bytes: &[u8]) -> Result<(WalRecord, usize), CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::UnexpectedEof { decoding: "wal record length" });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_BYTES {
        return Err(CodecError::Invalid(format!("wal record claims {len} bytes")));
    }
    let total = 4 + len + 4;
    if bytes.len() < total {
        return Err(CodecError::UnexpectedEof { decoding: "wal record body" });
    }
    let body = &bytes[4..4 + len];
    let expected = u32::from_le_bytes(bytes[4 + len..total].try_into().expect("4 bytes"));
    let found = crc32(body);
    if found != expected {
        return Err(CodecError::BadChecksum { expected, found });
    }
    let mut r = Reader::new(body, FORMAT_VERSION);
    let seq = r.get_u64("wal record seq")?;
    let stream = r.get_str("wal record stream")?;
    let count = r.get_u32("wal record row count")? as usize;
    if count > ausdb_model::codec::MAX_FRAME_ROWS {
        return Err(CodecError::Invalid(format!("wal record claims {count} rows")));
    }
    let mut rows = Vec::with_capacity(count.min(r.remaining() / 24 + 1));
    for _ in 0..count {
        let key = r.get_i64("wal row key")?;
        let ts = r.get_u64("wal row ts")?;
        let value = r.get_f64("wal row value")?;
        rows.push((key, ts, value));
    }
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok((WalRecord { seq, stream, rows }, total))
}

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.{SEGMENT_EXT}")
}

/// Parses `wal-<seq>.ausw` back into its first sequence number.
fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if rest.len() != 20 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Fsyncs a directory so entry creates/renames/deletes are durable.
/// Ignored on platforms where directories cannot be opened for sync.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Wal {
    /// Opens (or creates) the log in `dir`: scans every segment, truncates
    /// a torn tail on the last one, and positions the next append after
    /// the newest valid record.
    pub fn open(dir: impl Into<PathBuf>, options: WalOptions) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(first) = name.to_str().and_then(parse_segment_name) {
                segs.push((first, entry.path()));
            }
        }
        segs.sort_unstable_by_key(|&(first, _)| first);
        let mut sealed = Vec::new();
        let mut next_seq = 1u64;
        let mut active: Option<(PathBuf, SegmentScan)> = None;
        for (i, (first, path)) in segs.iter().enumerate() {
            let last = i + 1 == segs.len();
            // A newest segment shorter than its header is a torn creation:
            // the process died between creating the file and its header
            // sync landing. It never held a record, so delete it and let
            // a fresh active segment be created below — refusing to open
            // would brick the server on a crash-timing accident.
            if last && std::fs::metadata(path)?.len() < SEGMENT_HEADER_BYTES {
                journal::global().record(Level::Warn, "wal", || {
                    format!(
                        "removing {}: shorter than a segment header (torn creation)",
                        path.display()
                    )
                });
                std::fs::remove_file(path)?;
                sync_dir(&dir);
                continue;
            }
            let scan = scan_segment(path)
                .map_err(|e| invalid(format!("wal segment {}: {e}", path.display())))?;
            if scan.first_seq != *first {
                return Err(invalid(format!(
                    "wal segment {} header says first_seq={} but the name says {first}",
                    path.display(),
                    scan.first_seq
                )));
            }
            if scan.valid_bytes < scan.file_bytes && !last {
                return Err(invalid(format!(
                    "wal segment {} is corrupt mid-log (valid to byte {} of {})",
                    path.display(),
                    scan.valid_bytes,
                    scan.file_bytes
                )));
            }
            if i > 0 && scan.first_seq < next_seq {
                return Err(invalid(format!(
                    "wal segment {} overlaps the previous one",
                    path.display()
                )));
            }
            // The header's first_seq carries numbering intent even for a
            // record-free segment (a fresh active one after a truncate).
            next_seq = next_seq.max(scan.first_seq);
            if scan.records > 0 {
                next_seq = scan.last_seq + 1;
            }
            if last {
                if scan.valid_bytes < scan.file_bytes {
                    journal::global().record(Level::Warn, "wal", || {
                        format!(
                            "torn tail in {}: truncating {} bytes back to the last valid record",
                            path.display(),
                            scan.file_bytes - scan.valid_bytes
                        )
                    });
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(scan.valid_bytes)?;
                    f.sync_all()?;
                }
                active = Some((path.clone(), scan));
            } else {
                sealed.push(SealedSegment {
                    path: path.clone(),
                    first_seq: scan.first_seq,
                    last_seq: scan.last_seq,
                    bytes: scan.valid_bytes,
                });
            }
        }
        let wal = match active {
            Some((path, scan)) => {
                let file = OpenOptions::new().append(true).open(&path)?;
                Self {
                    dir,
                    options,
                    sealed,
                    active: file,
                    active_path: path,
                    active_first: scan.first_seq,
                    active_len: scan.valid_bytes,
                    active_records: scan.records,
                    next_seq,
                    unsynced: 0,
                    bg_dispatched: 0,
                    fsyncs: Arc::new(AtomicU64::new(0)),
                    encode_buf: Vec::new(),
                    sync_in_flight: Arc::new(AtomicBool::new(false)),
                    sync_failed: Arc::new(AtomicBool::new(false)),
                }
            }
            None => {
                let (path, file) = create_segment(&dir, next_seq)?;
                let wal = Self {
                    dir,
                    options,
                    sealed,
                    active: file,
                    active_path: path,
                    active_first: next_seq,
                    active_len: SEGMENT_HEADER_BYTES,
                    active_records: 0,
                    next_seq,
                    unsynced: 0,
                    bg_dispatched: 0,
                    fsyncs: Arc::new(AtomicU64::new(0)),
                    encode_buf: Vec::new(),
                    sync_in_flight: Arc::new(AtomicBool::new(false)),
                    sync_failed: Arc::new(AtomicBool::new(false)),
                };
                sync_dir(&wal.dir);
                wal
            }
        };
        wal.update_gauges();
        Ok(wal)
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.options.policy
    }

    /// Sequence number of the newest record ever appended (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest record still on disk, or
    /// `last_seq() + 1` when the log holds no records (everything a
    /// snapshot covered has been truncated away).
    pub fn first_available_seq(&self) -> u64 {
        if let Some(s) = self.sealed.first() {
            return s.first_seq;
        }
        if self.active_records > 0 {
            return self.active_first;
        }
        self.next_seq
    }

    /// Appends one batch with the next sequence number; returns that
    /// number. Fsyncs and rotates per the configured policy.
    pub fn append(&mut self, stream: &str, rows: &[FrameRow]) -> io::Result<u64> {
        self.append_iter(stream, rows.iter().copied())
    }

    /// Like [`Wal::append`] but takes the rows as an iterator, so callers
    /// holding them in another representation (the server's raw
    /// observations) encode straight into the log without building an
    /// intermediate `Vec<FrameRow>` first. This is the hot ingest path.
    pub fn append_iter<I>(&mut self, stream: &str, rows: I) -> io::Result<u64>
    where
        I: ExactSizeIterator<Item = FrameRow>,
    {
        let seq = self.next_seq;
        let mut buf = std::mem::take(&mut self.encode_buf);
        encode_record_into(&mut buf, seq, stream, rows);
        let res = self.append_encoded(&buf);
        self.encode_buf = buf;
        res?;
        Ok(seq)
    }

    /// Appends a record that must carry exactly the next sequence number —
    /// the follower replication path, which mirrors the primary's
    /// numbering so a promoted follower's log lines up with its state.
    pub fn append_at(&mut self, rec: &WalRecord) -> io::Result<()> {
        if rec.seq != self.next_seq {
            return Err(invalid(format!(
                "replicated record seq {} does not follow local seq {}",
                rec.seq,
                self.last_seq()
            )));
        }
        let mut buf = std::mem::take(&mut self.encode_buf);
        encode_record_into(&mut buf, rec.seq, &rec.stream, rec.rows.iter().copied());
        let res = self.append_encoded(&buf);
        self.encode_buf = buf;
        res
    }

    fn append_encoded(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.check_poisoned()?;
        self.active.write_all(bytes)?;
        self.active_len += bytes.len() as u64;
        self.active_records += 1;
        self.next_seq += 1;
        self.unsynced += bytes.len() as u64;
        if let Some(t) = &self.options.telemetry {
            t.records.inc();
        }
        match self.options.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch if self.unsynced >= self.options.batch_bytes => {
                self.sync_background()?
            }
            _ => {}
        }
        if self.active_len >= self.options.segment_bytes {
            self.seal_active()?;
        }
        self.update_gauges();
        Ok(())
    }

    /// Fsyncs any unsynced bytes (regardless of policy — an explicit
    /// flush is a durability point, e.g. before a snapshot). Also covers
    /// bytes handed to a still-running background group commit: the
    /// synchronous fdatasync here includes everything written so far.
    pub fn flush(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        if self.unsynced > 0 || self.sync_in_flight.load(Ordering::Acquire) {
            self.sync()?;
        }
        Ok(())
    }

    fn check_poisoned(&self) -> io::Result<()> {
        if self.sync_failed.load(Ordering::Acquire) {
            return Err(io::Error::other("a background WAL fsync failed; reopen the log"));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let t0 = Instant::now();
        self.active.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.unsynced = 0;
        // A synchronous fdatasync covers every prior write, including
        // bytes a still-running background commit was dispatched for.
        self.bg_dispatched = 0;
        if let Some(t) = &self.options.telemetry {
            t.fsyncs.inc();
            t.fsync_latency.observe_duration(t0.elapsed());
        }
        Ok(())
    }

    /// Group commit: initiate an fdatasync on a cloned handle off-thread
    /// so the append path keeps flowing while the disk catches up. At
    /// most one is in flight; while one runs, further batch thresholds
    /// just keep accumulating (the next dispatch covers them — an
    /// fdatasync covers every write made before the call). Falls back to
    /// a synchronous sync if the handle cannot be cloned.
    fn sync_background(&mut self) -> io::Result<()> {
        if self.sync_in_flight.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let file = match self.active.try_clone() {
            Ok(f) => f,
            Err(_) => {
                self.sync_in_flight.store(false, Ordering::Release);
                return self.sync();
            }
        };
        let in_flight = Arc::clone(&self.sync_in_flight);
        let failed = Arc::clone(&self.sync_failed);
        let fsyncs = Arc::clone(&self.fsyncs);
        let telemetry = self.options.telemetry.clone();
        let spawned =
            std::thread::Builder::new().name("ausdb-wal-sync".to_string()).spawn(move || {
                let t0 = Instant::now();
                // Counters move only on completion: a dispatched-but-
                // unfinished (or failed) fdatasync made nothing durable.
                match file.sync_data() {
                    Ok(()) => {
                        fsyncs.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = telemetry {
                            t.fsyncs.inc();
                            t.fsync_latency.observe_duration(t0.elapsed());
                        }
                    }
                    Err(_) => failed.store(true, Ordering::Release),
                }
                in_flight.store(false, Ordering::Release);
            });
        match spawned {
            Ok(_) => {
                // The dispatched bytes stay accounted as unsynced (via
                // `bg_dispatched`) until the thread confirms the sync.
                self.bg_dispatched = self.unsynced;
                self.unsynced = 0;
                Ok(())
            }
            Err(e) => {
                self.sync_in_flight.store(false, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Seals the active segment and starts a fresh one at `next_seq`.
    fn seal_active(&mut self) -> io::Result<()> {
        if self.options.policy != FsyncPolicy::Never {
            self.sync()?;
        }
        let (path, file) = create_segment(&self.dir, self.next_seq)?;
        sync_dir(&self.dir);
        let old = std::mem::replace(&mut self.active_path, path);
        self.sealed.push(SealedSegment {
            path: old,
            first_seq: self.active_first,
            last_seq: self.last_seq(),
            bytes: self.active_len,
        });
        self.active = file;
        self.active_first = self.next_seq;
        self.active_len = SEGMENT_HEADER_BYTES;
        self.active_records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Reads every record with `seq > from_seq`, oldest first, up to
    /// `max` of them. Re-reads segment files, so a concurrent reader (the
    /// replication path) sees exactly what `append` wrote.
    pub fn read_from(&self, from_seq: u64, max: usize) -> io::Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        let active = if self.active_records > 0 {
            vec![(self.active_path.clone(), self.last_seq())]
        } else {
            Vec::new()
        };
        let all = self.sealed.iter().map(|s| (s.path.clone(), s.last_seq)).chain(active);
        for (path, last) in all {
            if out.len() >= max {
                break;
            }
            if last <= from_seq {
                continue;
            }
            read_segment_records(&path, from_seq, max, &mut out)?;
        }
        Ok(out)
    }

    /// Deletes every segment whose records are all `<= seq` (the snapshot
    /// watermark). If that covers the active segment too, it is replaced
    /// by a fresh one so the log never re-replays snapshotted batches.
    pub fn truncate_through(&mut self, seq: u64) -> io::Result<()> {
        let mut kept = Vec::new();
        for s in self.sealed.drain(..) {
            if s.last_seq <= seq {
                std::fs::remove_file(&s.path)?;
            } else {
                kept.push(s);
            }
        }
        self.sealed = kept;
        if self.sealed.is_empty() && self.active_records > 0 && self.last_seq() <= seq {
            // Everything in the active segment is covered: restart it.
            self.replace_active(self.next_seq)?;
        }
        sync_dir(&self.dir);
        self.update_gauges();
        Ok(())
    }

    /// Drops every segment and restarts the log so the next append gets
    /// `seq + 1` — the follower bootstrap path after installing a
    /// primary snapshot with watermark `seq`.
    pub fn reset_to(&mut self, seq: u64) -> io::Result<()> {
        for s in self.sealed.drain(..) {
            std::fs::remove_file(&s.path)?;
        }
        self.next_seq = seq + 1;
        self.replace_active(self.next_seq)?;
        sync_dir(&self.dir);
        self.update_gauges();
        Ok(())
    }

    /// Swaps the active segment for a fresh, empty one named for
    /// `first_seq`, deleting the old file (which may be the same path —
    /// `create_segment` truncates in place then).
    fn replace_active(&mut self, first_seq: u64) -> io::Result<()> {
        let new_path = self.dir.join(segment_file_name(first_seq));
        if new_path != self.active_path {
            std::fs::remove_file(&self.active_path)?;
        }
        let (path, file) = create_segment(&self.dir, first_seq)?;
        self.active = file;
        self.active_path = path;
        self.active_first = first_seq;
        self.active_len = SEGMENT_HEADER_BYTES;
        self.active_records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Current log shape.
    pub fn stats(&self) -> WalStats {
        // Dispatched bytes count as unsynced until the background
        // fdatasync completes (observed as `sync_in_flight` clearing).
        let in_flight =
            if self.sync_in_flight.load(Ordering::Acquire) { self.bg_dispatched } else { 0 };
        WalStats {
            segments: self.sealed.len() + 1,
            bytes: self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active_len,
            last_seq: self.last_seq(),
            first_seq: self.first_available_seq(),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            unsynced: self.unsynced + in_flight,
        }
    }

    fn update_gauges(&self) {
        if let Some(t) = &self.options.telemetry {
            let stats = self.stats();
            t.segments.set(stats.segments as f64);
            t.bytes.set(stats.bytes as f64);
        }
    }
}

/// Creates a fresh segment file with its header written and synced —
/// segment creation is rare (open/seal/reset), and an unsynced header
/// is a file a power cut can leave empty or partial, which the next
/// open would have to special-case as a torn creation.
fn create_segment(dir: &Path, first_seq: u64) -> io::Result<(PathBuf, File)> {
    let path = dir.join(segment_file_name(first_seq));
    let mut file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
    write_segment_header(&mut file, first_seq)?;
    file.sync_data()?;
    Ok((path, file))
}

fn write_segment_header(file: &mut File, first_seq: u64) -> io::Result<()> {
    let mut w = Writer::new();
    w.put_bytes(&SEGMENT_MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u64(first_seq);
    file.write_all(&w.into_bytes())
}

/// Scans one segment file: validates the header and walks records until
/// the first invalid one (torn tail) or EOF.
fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let first_seq = parse_segment_header(&bytes).map_err(|e| invalid(e.to_string()))?;
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    let mut records = 0u64;
    let mut last_seq = 0u64;
    let mut expect = first_seq;
    while pos < bytes.len() {
        match decode_record(&bytes[pos..]) {
            Ok((rec, consumed)) if rec.seq == expect => {
                last_seq = rec.seq;
                expect += 1;
                records += 1;
                pos += consumed;
            }
            // A wrong seq or any decode failure ends the valid prefix.
            _ => break,
        }
    }
    Ok(SegmentScan {
        first_seq,
        records,
        last_seq,
        valid_bytes: pos as u64,
        file_bytes: bytes.len() as u64,
    })
}

fn parse_segment_header(bytes: &[u8]) -> Result<u64, CodecError> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(CodecError::UnexpectedEof { decoding: "wal segment header" });
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !(ausdb_model::codec::MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    Ok(u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes")))
}

/// Appends every record in `path` with `seq > from_seq` to `out`, up to
/// `max` total.
fn read_segment_records(
    path: &Path,
    from_seq: u64,
    max: usize,
    out: &mut Vec<WalRecord>,
) -> io::Result<()> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse_segment_header(&bytes).map_err(|e| invalid(e.to_string()))?;
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    while pos < bytes.len() && out.len() < max {
        let Ok((rec, consumed)) = decode_record(&bytes[pos..]) else { break };
        pos += consumed;
        if rec.seq > from_seq {
            out.push(rec);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ausdb_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_options() -> WalOptions {
        WalOptions {
            policy: FsyncPolicy::Never,
            segment_bytes: 256,
            batch_bytes: 64,
            telemetry: None,
        }
    }

    #[test]
    fn record_roundtrip_is_bit_exact() {
        let rec = WalRecord {
            seq: 7,
            stream: "traffic".into(),
            rows: vec![
                (19, 100, 56.0),
                (-4, 0, -0.0),
                (i64::MAX, u64::MAX, f64::NEG_INFINITY),
                (0, 1, f64::from_bits(0x7ff8_dead_beef_0001)),
            ],
        };
        let bytes = encode_record(&rec);
        let (back, consumed) = decode_record(&bytes).expect("decodes");
        assert_eq!(consumed, bytes.len());
        assert_eq!((back.seq, back.stream.as_str()), (7, "traffic"));
        for ((k1, t1, v1), (k2, t2, v2)) in rec.rows.iter().zip(&back.rows) {
            assert_eq!((k1, t1), (k2, t2));
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn append_reopen_read_roundtrip() {
        let dir = tmpdir("reopen");
        {
            let mut wal = Wal::open(&dir, small_options()).unwrap();
            for i in 1..=10u64 {
                let seq = wal.append("s", &[(i as i64, 100 + i, i as f64)]).unwrap();
                assert_eq!(seq, i);
            }
            assert_eq!(wal.last_seq(), 10);
            wal.flush().unwrap();
        }
        let wal = Wal::open(&dir, small_options()).unwrap();
        assert_eq!(wal.last_seq(), 10);
        assert_eq!(wal.first_available_seq(), 1);
        let recs = wal.read_from(0, usize::MAX).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), (1..=10).collect::<Vec<_>>());
        let tail = wal.read_from(7, usize::MAX).unwrap();
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![8, 9, 10]);
        assert!(wal.stats().segments > 1, "256-byte segments must have rotated");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_through_deletes_covered_segments() {
        let dir = tmpdir("truncate");
        let mut wal = Wal::open(&dir, small_options()).unwrap();
        for i in 1..=20u64 {
            wal.append("s", &[(1, i, 1.0)]).unwrap();
        }
        let before = wal.stats();
        assert!(before.segments > 2);
        wal.truncate_through(wal.last_seq()).unwrap();
        let after = wal.stats();
        assert_eq!(after.segments, 1, "everything covered: only a fresh active segment remains");
        assert_eq!(after.last_seq, 20, "sequence numbering continues");
        assert_eq!(wal.first_available_seq(), 21);
        // Appends continue seamlessly and survive a reopen.
        assert_eq!(wal.append("s", &[(1, 99, 2.0)]).unwrap(), 21);
        wal.flush().unwrap();
        drop(wal);
        let wal = Wal::open(&dir, small_options()).unwrap();
        assert_eq!(wal.last_seq(), 21);
        assert_eq!(wal.read_from(0, usize::MAX).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_to_restarts_numbering() {
        let dir = tmpdir("reset");
        let mut wal = Wal::open(&dir, small_options()).unwrap();
        for i in 1..=5u64 {
            wal.append("s", &[(1, i, 1.0)]).unwrap();
        }
        wal.reset_to(42).unwrap();
        assert_eq!(wal.next_seq(), 43);
        assert_eq!(wal.read_from(0, usize::MAX).unwrap().len(), 0);
        wal.append_at(&WalRecord { seq: 43, stream: "s".into(), rows: vec![(1, 1, 1.0)] }).unwrap();
        // A gap is rejected.
        let gap = WalRecord { seq: 45, stream: "s".into(), rows: vec![] };
        assert!(wal.append_at(&gap).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_segment_header_is_discarded_on_open() {
        let dir = tmpdir("torn_header");
        {
            let mut wal = Wal::open(&dir, small_options()).unwrap();
            for i in 1..=6u64 {
                wal.append("s", &[(1, i, i as f64)]).unwrap();
            }
            wal.flush().unwrap();
        }
        // A crash between creating a fresh segment and its header landing
        // leaves a zero-length or partial-header newest file; open must
        // discard it and carry on, not refuse with InvalidData.
        for (last, partial) in (6u64..).zip([&b""[..], &b"AU"[..], &b"AUSW\x02\x00"[..]]) {
            let torn = dir.join(segment_file_name(100));
            std::fs::write(&torn, partial).unwrap();
            let mut wal = Wal::open(&dir, small_options()).unwrap();
            assert!(!torn.exists(), "torn segment must be removed");
            assert_eq!(wal.last_seq(), last, "records before the torn creation survive");
            assert_eq!(wal.read_from(0, usize::MAX).unwrap().len(), last as usize);
            assert_eq!(wal.append("s", &[(1, last + 1, 1.0)]).unwrap(), last + 1);
            wal.flush().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsyncs_and_unsynced_count_completions_not_dispatches() {
        let dir = tmpdir("accounting");
        // Batch policy with a huge threshold: appends never trigger a
        // sync, so only the explicit flush moves the counters.
        let options = WalOptions {
            policy: FsyncPolicy::Batch,
            segment_bytes: 1 << 20,
            batch_bytes: 1 << 20,
            telemetry: None,
        };
        let mut wal = Wal::open(&dir, options).unwrap();
        assert_eq!(wal.stats().unsynced, 0);
        wal.append("s", &[(1, 1, 1.0)]).unwrap();
        let mid = wal.stats();
        assert!(mid.unsynced > 0, "appended bytes are unsynced until a sync completes");
        wal.flush().unwrap();
        let after = wal.stats();
        assert_eq!(after.unsynced, 0);
        assert_eq!(after.fsyncs, mid.fsyncs + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse(" Batch "), Some(FsyncPolicy::Batch));
        assert_eq!(FsyncPolicy::parse("NEVER"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(p.as_str()), Some(p));
        }
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(parse_segment_name(&segment_file_name(1)), Some(1));
        assert_eq!(parse_segment_name(&segment_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_segment_name("wal-123.ausw"), None, "unpadded names are foreign");
        assert_eq!(parse_segment_name("state.snap"), None);
    }
}
