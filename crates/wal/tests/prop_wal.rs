//! Property tests for the WAL: bit-exact round-trips through every
//! float shape (NaN payloads, infinities, signed zero), torn-tail
//! recovery of the valid prefix, and clean replay stop on corruption.

use proptest::prelude::*;

use ausdb_wal::{decode_record, encode_record, FsyncPolicy, Wal, WalOptions, WalRecord};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ausdb_prop_wal_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn options() -> WalOptions {
    WalOptions { policy: FsyncPolicy::Never, ..WalOptions::new() }
}

/// Raw rows as generated: the value travels as **bits** so every f64
/// shape appears — NaN (arbitrary payloads, incl. signaling), ±∞, −0.0 —
/// without float equality mangling the comparison.
type RawRows = Vec<(i64, u64, u64)>;

/// Forces the interesting float shapes into roughly a third of values;
/// the rest stay arbitrary bit patterns.
fn shape_bits(bits: u64) -> u64 {
    match bits % 8 {
        0 => f64::NAN.to_bits() | (bits >> 16), // NaN with a varying payload
        1 => f64::INFINITY.to_bits(),
        2 => f64::NEG_INFINITY.to_bits(),
        3 => (-0.0f64).to_bits(),
        _ => bits,
    }
}

fn to_rows(raw: &RawRows) -> Vec<(i64, u64, f64)> {
    raw.iter().map(|&(k, t, bits)| (k, t, f64::from_bits(shape_bits(bits)))).collect()
}

/// Bit-level equality: `==` on f64 would reject NaN and conflate ±0.
fn rows_eq(a: &[(i64, u64, f64)], b: &[(i64, u64, f64)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| x.0 == y.0 && x.1 == y.1 && x.2.to_bits() == y.2.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_encode_decode_is_bit_exact(
        seq in 1u64..u64::MAX,
        stream in "[a-z_]{1,24}",
        raw in prop::collection::vec((i64::MIN..i64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..40),
    ) {
        let rec = WalRecord { seq, stream, rows: to_rows(&raw) };
        let bytes = encode_record(&rec);
        let (got, used) = decode_record(&bytes).expect("decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got.seq, rec.seq);
        prop_assert_eq!(&got.stream, &rec.stream);
        prop_assert!(rows_eq(&got.rows, &rec.rows));
    }

    #[test]
    fn append_read_round_trips_through_disk(
        batches in prop::collection::vec(
            ("[a-z_]{1,16}", prop::collection::vec((i64::MIN..i64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 1..24)),
            1..12,
        ),
    ) {
        let dir = scratch_dir("roundtrip");
        let mut wal = Wal::open(&dir, options()).unwrap();
        let mut expected = Vec::new();
        for (stream, raw) in &batches {
            let rows = to_rows(raw);
            let seq = wal.append(stream, &rows).unwrap();
            expected.push((seq, stream.clone(), rows));
        }
        wal.flush().unwrap();
        // Read back through a fresh handle (forces the on-disk path).
        let reopened = Wal::open(&dir, options()).unwrap();
        let got = reopened.read_from(0, usize::MAX).unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (rec, (seq, stream, rows)) in got.iter().zip(&expected) {
            prop_assert_eq!(rec.seq, *seq);
            prop_assert_eq!(&rec.stream, stream);
            prop_assert!(rows_eq(&rec.rows, rows));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the active segment anywhere inside the last record —
    /// the torn write a crash leaves — recovers exactly the records
    /// before it, and the next append reuses the torn record's sequence
    /// number (it was never acknowledged as durable).
    #[test]
    fn torn_tail_recovers_the_valid_prefix(nrecs in 1usize..8, cut_back in 1u64..40) {
        let dir = scratch_dir("torn");
        let mut wal = Wal::open(&dir, options()).unwrap();
        for i in 0..nrecs {
            wal.append("s", &[(i as i64, i as u64, 0.5 + i as f64)]).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);

        let seg = last_segment(&dir);
        let len = std::fs::metadata(&seg).unwrap().len();
        let last_rec_bytes = encode_record(&WalRecord {
            seq: nrecs as u64,
            stream: "s".into(),
            rows: vec![((nrecs - 1) as i64, (nrecs - 1) as u64, 0.5 + (nrecs - 1) as f64)],
        })
        .len() as u64;
        // Cut strictly inside the last record (never into earlier ones).
        let cut = len - (cut_back % last_rec_bytes).max(1);
        std::fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(cut).unwrap();

        let mut wal = Wal::open(&dir, options()).unwrap();
        prop_assert_eq!(wal.last_seq(), nrecs as u64 - 1);
        let got = wal.read_from(0, usize::MAX).unwrap();
        prop_assert_eq!(got.len(), nrecs - 1);
        prop_assert!(got.iter().zip(1u64..).all(|(r, want)| r.seq == want));
        // The log stays writable and renumbers from the recovered tail.
        let seq = wal.append("s", &[(7, 7, 7.0)]).unwrap();
        prop_assert_eq!(seq, nrecs as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A flipped byte in a record body (bad CRC) stops recovery at the
    /// last good record — no panic, no garbage rows surfacing as data.
    #[test]
    fn bad_crc_stops_replay_cleanly(nrecs in 2usize..8, victim in 0usize..8, flip in 1u64..256) {
        let dir = scratch_dir("crc");
        let mut wal = Wal::open(&dir, options()).unwrap();
        let mut offsets = vec![ausdb_wal::SEGMENT_MAGIC.len() as u64 + 2 + 8];
        for i in 0..nrecs {
            let rec = WalRecord {
                seq: i as u64 + 1,
                stream: "s".into(),
                rows: vec![(i as i64, i as u64, 1.5)],
            };
            let len = encode_record(&rec).len() as u64;
            wal.append("s", &rec.rows).unwrap();
            offsets.push(offsets.last().unwrap() + len);
        }
        wal.flush().unwrap();
        drop(wal);

        let victim = victim % nrecs;
        let seg = last_segment(&dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a byte in the victim record's body (past its 4-byte length
        // prefix, so the framing still parses and the CRC must catch it).
        let pos = offsets[victim] as usize + 6;
        bytes[pos] ^= flip as u8;
        std::fs::write(&seg, &bytes).unwrap();

        let wal = Wal::open(&dir, options()).unwrap();
        prop_assert_eq!(wal.last_seq(), victim as u64);
        let got = wal.read_from(0, usize::MAX).unwrap();
        prop_assert_eq!(got.len(), victim);
        prop_assert!(got.iter().zip(1u64..).all(|(r, want)| r.seq == want));
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn last_segment(dir: &std::path::Path) -> std::path::PathBuf {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == ausdb_wal::SEGMENT_EXT))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}
