//! Quickstart: learn distributions from raw observations, inspect their
//! accuracy information, and query them — first through the typed API,
//! then through SQL.
//!
//! Run with: `cargo run --example quickstart`

use ausdb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Raw data (the paper's Figure 1): per-road delay observations.
    //    Road 19 has been measured 3 times, road 20 fifty times.
    // ------------------------------------------------------------------
    let mut learner = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9, // 90% confidence intervals
            window_width: 120,
            min_observations: 2,
        },
        "road_id",
        "delay",
    );
    learner.observe_all([
        RawObservation::new(19, 530, 56.0),
        RawObservation::new(19, 531, 38.0),
        RawObservation::new(19, 531, 97.0),
    ]);
    // Fifty reports for road 20, delays clustered around 64s.
    learner.observe_all(
        (0..50).map(|i| RawObservation::new(20, 529 + i % 3, 55.0 + (i * 7 % 20) as f64)),
    );

    // ------------------------------------------------------------------
    // 2. Learning: raw records become ONE probabilistic tuple per road,
    //    each carrying accuracy information.
    // ------------------------------------------------------------------
    let schema = learner.schema().clone();
    let tuples = learner.emit_window(500)?;
    println!("learned {} probabilistic tuples:\n", tuples.len());
    for t in &tuples {
        let road = &t.fields[0].value;
        let field = &t.fields[1];
        let dist = field.value.as_dist()?;
        let info = field.accuracy.as_ref().expect("learner attaches accuracy");
        let mu = info.mean_ci.expect("mean interval present");
        println!(
            "  road {road}: mean delay {:.1}s from n={} observations; 90% CI for mu = {mu}",
            dist.mean(),
            field.sample_size.expect("learned field has provenance"),
        );
    }
    println!();

    // ------------------------------------------------------------------
    // 3. The accuracy-oblivious query (the paper's introduction): both
    //    roads satisfy "delay > 50 with probability 2/3" — even road 19,
    //    whose 3 observations hardly support any conclusion.
    // ------------------------------------------------------------------
    let mut session = Session::new();
    session.register("t", schema, tuples);
    let (_, oblivious) = run_sql(&session, "SELECT road_id FROM t WHERE delay > 50 PROB 0.66")?;
    println!(
        "accuracy-oblivious threshold query returns {} roads: {:?}",
        oblivious.len(),
        oblivious.iter().map(|t| t.fields[0].value.to_string()).collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // 4. The accuracy-aware version: a significance predicate demands the
    //    claim be statistically significant at alpha = 0.05.
    // ------------------------------------------------------------------
    let (_, significant) =
        run_sql(&session, "SELECT road_id FROM t HAVING PTEST(delay > 50, 0.66, 0.05)")?;
    println!(
        "significance predicate keeps {} road(s): {:?}",
        significant.len(),
        significant.iter().map(|t| t.fields[0].value.to_string()).collect::<Vec<_>>()
    );
    println!("\nroad 19's 3 observations cannot make the claim significant; road 20's 50 can.");
    Ok(())
}
