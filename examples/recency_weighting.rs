//! Recency-weighted learning under drift — the paper's Section VII future
//! work, demonstrated.
//!
//! An incident doubles a road's delay mid-stream. The classic windowed
//! learner keeps averaging over the whole window and reports a confidently
//! wrong delay; the recency-weighted learner (exponential decay, accuracy
//! driven by *effective* sample size) tracks the new level and widens its
//! interval to match what it actually knows.
//!
//! Run with: `cargo run --example recency_weighting`

use ausdb::learn::weighted::{WeightedLearnerConfig, WeightedStreamLearner};
use ausdb::prelude::*;
use ausdb::stats::dist::{ContinuousDistribution, Normal};
use ausdb::stats::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded(2012);
    let calm = Normal::new(45.0, 6.0)?; // normal traffic: ~45s delays
    let jammed = Normal::new(95.0, 10.0)?; // after the incident: ~95s

    // One delay report every ~30 seconds; the incident happens at t=1200.
    let mut reports = Vec::new();
    for i in 0..80u64 {
        let ts = i * 30;
        let delay = if ts < 1200 { calm.sample(&mut rng) } else { jammed.sample(&mut rng) };
        reports.push(RawObservation::new(7, ts, delay));
    }

    // Unweighted learner over the trailing 40-minute window.
    let mut unweighted = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Gaussian,
            level: 0.9,
            window_width: 2400,
            min_observations: 2,
        },
        "road_id",
        "delay",
    );
    unweighted.observe_all(reports.iter().copied());

    // Weighted learner: 4-minute half-life.
    let mut weighted = WeightedStreamLearner::with_column_names(
        WeightedLearnerConfig::gaussian(240.0),
        "road_id",
        "delay",
    );
    weighted.observe_all(reports.iter().copied());

    let now = 80 * 30; // ten minutes after the incident
    println!("incident at t=1200s doubled the true delay to ~95s; it is now t={now}s\n");

    let u = unweighted.emit_window(0)?.pop().expect("road 7 tuple");
    let w = weighted.emit_at(now)?.pop().expect("road 7 tuple");

    for (label, tuple) in [("unweighted window", &u), ("recency-weighted", &w)] {
        let field = &tuple.fields[1];
        let dist = field.value.as_dist()?;
        let info = field.accuracy.as_ref().expect("accuracy attached");
        let ci = info.mean_ci.expect("mean interval");
        println!(
            "{label:>18}: mean delay {:>6.1}s, 90% CI {ci}, advertised n = {}",
            dist.mean(),
            info.sample_size,
        );
        let verdict = if ci.contains(95.0) {
            "covers the current truth"
        } else {
            "confidently wrong about the current state"
        };
        println!("{:>18}  → {verdict}", "");
    }

    println!(
        "\nThe weighted learner discounts the 40 calm-period reports, so its mean \
         tracks\nthe jam and its advertised sample size honestly reflects the few \
         post-incident\nreports it is effectively relying on."
    );
    Ok(())
}
