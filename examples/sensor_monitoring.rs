//! Sensor-network monitoring with sliding windows and accuracy-aware
//! alerting (the paper's Section V-C pipeline as an application).
//!
//! A temperature sensor emits noisy readings; the system learns one
//! Gaussian per reporting interval, maintains a count-based sliding-window
//! AVG, and raises an alert only when "the window average exceeds the
//! safety threshold with probability >= 0.8" is *statistically
//! significant* (coupled pTest). Both analytical and bootstrap accuracy
//! of the window average are shown side by side.
//!
//! Run with: `cargo run --example sensor_monitoring`

use ausdb::prelude::*;
use ausdb::stats::dist::{ContinuousDistribution, Normal};
use ausdb::stats::rng::seeded;

const READINGS_PER_INTERVAL: usize = 20;
const WINDOW: usize = 12;
const SAFE_LIMIT: f64 = 75.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Simulate a day of readings: ambient ~70°F, with a heat event in
    //    the second half that pushes the true temperature to ~78°F.
    // ------------------------------------------------------------------
    let mut rng = seeded(7);
    let mut tuples = Vec::new();
    let schema = Schema::new(vec![Column::new("temp", ColumnType::Dist)])?;
    for interval in 0..48u64 {
        let true_temp = if interval < 24 { 70.0 } else { 78.0 };
        let sensor = Normal::new(true_temp, 4.0)?;
        let readings = sensor.sample_n(&mut rng, READINGS_PER_INTERVAL);
        let (dist, info) = learn_with_accuracy(&readings, DistKind::Gaussian, 0.9)?;
        tuples.push(Tuple::certain(
            interval,
            vec![Field::learned(dist, READINGS_PER_INTERVAL).with_accuracy(info)],
        ));
    }

    // ------------------------------------------------------------------
    // 2. Sliding-window AVG with ANALYTICAL accuracy.
    // ------------------------------------------------------------------
    let source = VecStream::new(schema.clone(), tuples.clone(), 16);
    let mut window = WindowAgg::new(
        source,
        "temp",
        WindowAggKind::Avg,
        WINDOW,
        AccuracyMode::Analytical { level: 0.9 },
        1,
    )?;
    let analytical: Vec<Tuple> = window.collect_all();

    // The same pipeline with BOOTSTRAP accuracy, for comparison.
    let source = VecStream::new(schema.clone(), tuples.clone(), 16);
    let mut window = WindowAgg::new(
        source,
        "temp",
        WindowAggKind::Avg,
        WINDOW,
        AccuracyMode::Bootstrap { level: 0.9, mc_values: 600 },
        1,
    )?;
    let bootstrap: Vec<Tuple> = window.collect_all();

    println!("window-average accuracy (every 6th window):");
    println!(
        "{:>6} {:>10} {:>26} {:>26}",
        "window", "avg(temp)", "analytical 90% CI", "bootstrap 90% CI"
    );
    for (a, b) in analytical.iter().zip(&bootstrap).step_by(6) {
        let dist = a.fields[0].value.as_dist()?;
        let ana = a.fields[0].accuracy.as_ref().expect("analytical CI").mean_ci.unwrap();
        let boo = b.fields[0].accuracy.as_ref().expect("bootstrap CI").mean_ci.unwrap();
        println!(
            "{:>6} {:>10.2} {:>26} {:>26}",
            a.ts,
            dist.mean(),
            format!("[{:.2}, {:.2}]", ana.lo, ana.hi),
            format!("[{:.2}, {:.2}]", boo.lo, boo.hi),
        );
    }

    // ------------------------------------------------------------------
    // 3. Accuracy-aware alerting: coupled pTest on the window average.
    //    The boolean r.v. "avg > SAFE_LIMIT" inherits the de-facto sample
    //    size of the window, so thinly-supported spikes cannot alert.
    // ------------------------------------------------------------------
    let source = VecStream::new(schema.clone(), tuples, 16);
    let window = WindowAgg::new(
        source,
        "temp",
        WindowAggKind::Avg,
        WINDOW,
        AccuracyMode::Analytical { level: 0.9 },
        1,
    )?;
    let alert =
        SigPredicate::p_test(Predicate::compare(Expr::col("avg_temp"), CmpOp::Gt, SAFE_LIMIT), 0.8);
    let mut alerts = SigFilter::new(
        window,
        alert,
        SigMode::Coupled { config: CoupledConfig::default(), keep_unsure: false },
        400,
        3,
    );
    let alerting: Vec<Tuple> = alerts.collect_all();
    let (t, f, u) = alerts.outcome_counts();
    println!(
        "\nalerting over {} windows: {} TRUE (alert), {} FALSE, {} UNSURE",
        t + f + u,
        t,
        f,
        u
    );
    match alerting.first() {
        Some(first) => println!(
            "first alert at window ts = {} (heat event began at ts = 24; a window \
             must fill with hot intervals before the claim becomes significant)",
            first.ts
        ),
        None => println!("no alert was significant at the requested error rates"),
    }
    Ok(())
}
