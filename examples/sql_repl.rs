//! A small SQL shell over a simulated uncertain stream.
//!
//! Registers a CarTel-style `roads` stream (one probabilistic tuple per
//! road segment, learned from fleet observations) and runs either the
//! queries given on the command line or a demo script showcasing the
//! extended syntax: probability-threshold comparisons, significance
//! predicates, window aggregates, and accuracy clauses.
//!
//! Run with: `cargo run --example sql_repl`
//! or:       `cargo run --example sql_repl -- "SELECT road_id FROM roads WHERE delay > 60 PROB 0.5"`

use ausdb::datagen::cartel::CartelSim;
use ausdb::prelude::*;

fn build_session() -> Result<Session, Box<dyn std::error::Error>> {
    // Simulate the fleet for ten minutes and learn per-road delay
    // distributions from whatever reports arrived.
    let sim = CartelSim::new(40, 2012);
    let observations = sim.fleet_observations(600, 4.0, 1);
    let mut learner = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: 600,
            min_observations: 3,
        },
        "road_id",
        "delay",
    );
    learner.observe_all(observations);
    let schema = learner.schema().clone();
    let tuples = learner.emit_window(0)?;
    eprintln!(
        "registered stream 'roads': {} segments with learned delay distributions\n",
        tuples.len()
    );
    let mut session = Session::new();
    session.register("roads", schema, tuples);
    Ok(session)
}

fn run_one(session: &Session, sql: &str) {
    println!("ausdb> {sql}");
    match run_sql(session, sql) {
        Ok((schema, rows)) => {
            let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
            println!("  {}", names.join(" | "));
            for row in rows.iter().take(10) {
                let cells: Vec<String> = row
                    .fields
                    .iter()
                    .map(|f| {
                        let mut s = f.value.to_string();
                        if let Some(info) = &f.accuracy {
                            if let Some(mu) = info.mean_ci {
                                s.push_str(&format!("  mu in {mu}"));
                            }
                        }
                        s
                    })
                    .collect();
                let memb = if row.membership.is_certain() {
                    String::new()
                } else {
                    match row.membership.ci {
                        Some(ci) => format!("   (p = {:.3}, CI {ci})", row.membership.p),
                        None => format!("   (p = {:.3})", row.membership.p),
                    }
                };
                println!("  {}{}", cells.join(" | "), memb);
            }
            if rows.len() > 10 {
                println!("  ... {} rows total", rows.len());
            }
            println!();
        }
        Err(e) => println!("  error: {e}\n"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = build_session()?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for sql in &args {
            run_one(&session, sql);
        }
        return Ok(());
    }
    // Demo script.
    for sql in [
        // Plain projection with accuracy info in the SELECT list.
        "SELECT road_id, delay FROM roads WITH ACCURACY ANALYTICAL LEVEL 0.9",
        // The introduction's probability-threshold query.
        "SELECT road_id FROM roads WHERE delay > 60 PROB 0.66",
        // Possible-world filtering: tuples keep a membership probability
        // (with its Lemma 1 interval).
        "SELECT road_id FROM roads WHERE delay > 60",
        // A derived field: delay in minutes, accuracy propagated through
        // the expression via the de-facto sample size.
        "SELECT road_id, delay / 60 AS delay_min FROM roads WITH ACCURACY BOOTSTRAP SAMPLES 800",
        // Significance predicate: only roads where 'mean delay > 45s' is
        // statistically significant (coupled, both error rates 5%).
        "SELECT road_id FROM roads HAVING MTEST(delay, '>', 45, 0.05, 0.05)",
        // And the pTest flavor over an arbitrary comparison.
        "SELECT road_id FROM roads HAVING PTEST(delay > 45, 0.5, 0.05)",
        // Grouped aggregation with ordering: the three slowest roads.
        "SELECT road_id, delay FROM roads ORDER BY delay DESC LIMIT 3",
        // Per-road-group average by speed-limit class would need a second
        // stream; GROUP BY over the single stream still demonstrates the
        // clause (one group per road here).
        "SELECT road_id, AVG(delay) FROM roads GROUP BY road_id LIMIT 3",
    ] {
        run_one(&session, sql);
    }
    Ok(())
}
