//! Traffic-aware routing (the paper's Example 1 / CarTel scenario).
//!
//! A routing service must decide, in real time, which of two candidate
//! routes is faster. Delay reports trickle in from a taxi fleet; each
//! route's total-delay distribution is learned from however many reports
//! have arrived so far. The decision runs as a **coupled mdTest**: it
//! answers UNSURE while the data cannot support a decision at the
//! requested error rates, and flips to a definite answer once enough
//! reports accumulate — the paper's "online computation" usage, where
//! acquisition stops as soon as the intervals are narrow enough.
//!
//! Run with: `cargo run --example traffic_routing`

use ausdb::datagen::cartel::CartelSim;
use ausdb::datagen::routes::close_mean_pairs;
use ausdb::prelude::*;
use ausdb::stats::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated Boston-ish road network and two candidate routes whose
    // true mean delays differ by only a few percent — a hard comparison.
    let sim = CartelSim::new(200, 42);
    // Pairs come ordered (smaller true mean, larger true mean).
    let (faster, slower) = close_mean_pairs(&sim, 1, 18, 0.05, 7).remove(0);
    println!(
        "candidate A: {} segments, true mean delay {:.1}s",
        faster.segments.len(),
        faster.true_mean(&sim)
    );
    println!(
        "candidate B: {} segments, true mean delay {:.1}s",
        slower.segments.len(),
        slower.true_mean(&sim)
    );
    println!("(the service does NOT know these true values)\n");

    let schema =
        Schema::new(vec![Column::new("a", ColumnType::Dist), Column::new("b", ColumnType::Dist)])?;
    // "Is B's mean delay greater than A's?" with both error rates <= 5%.
    let pred = SigPredicate::md_test(Expr::col("b"), Expr::col("a"), Alternative::Greater, 0.0);
    let config = CoupledConfig { alpha1: 0.05, alpha2: 0.05, mc_iters: 400 };

    let mut rng = seeded(99);
    let mut reports_a: Vec<f64> = Vec::new();
    let mut reports_b: Vec<f64> = Vec::new();

    // Reports arrive in small batches; after each batch, re-learn and
    // re-test. Stop as soon as the coupled test decides.
    for round in 1..=30 {
        reports_a.extend(faster.observe_n(&sim, &mut rng, 4));
        reports_b.extend(slower.observe_n(&sim, &mut rng, 4));

        let tuple = Tuple::certain(
            round,
            vec![
                Field::learned(AttrDistribution::empirical(reports_a.clone())?, reports_a.len()),
                Field::learned(AttrDistribution::empirical(reports_b.clone())?, reports_b.len()),
            ],
        );
        let outcome = coupled_tests(&pred, config, &tuple, &schema, &mut rng)?;
        println!(
            "round {round:>2}: n = {:>3} reports/route, mdTest(B > A) = {outcome:?}",
            reports_a.len()
        );
        match outcome {
            SigOutcome::True => {
                println!("\ndecision: route A is significantly faster — stop acquiring data.");
                println!("(false-positive rate of this decision is bounded by 5%)");
                return Ok(());
            }
            SigOutcome::False => {
                println!("\ndecision: route B is significantly faster — stop acquiring data.");
                return Ok(());
            }
            SigOutcome::Unsure => {} // keep acquiring
        }
    }
    println!("\nthe routes are statistically indistinguishable at these error rates;");
    println!("either is a defensible recommendation.");
    Ok(())
}
