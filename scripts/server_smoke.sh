#!/usr/bin/env bash
# End-to-end smoke test for `ausdb serve`: start, ingest, query, stats,
# snapshot, shutdown — then restart against the snapshot and verify the
# restored state answers the same query identically. Along the way it
# scrapes `GET /metrics` over plain HTTP and asserts the body is
# byte-identical to the `METRICS` protocol reply, checks `HELP`, and
# verifies `--trace-json` writes Chrome trace-event JSON on shutdown.
# Phase 7 probes `GET /healthz` / `GET /readyz` and drives an
# accuracy-SLO violation end to end: subscribe, arm an impossibly tight
# `SLO SET`, close a window, and watch the `ACCURACY` notice plus the
# violation counter land. Phase 8 exercises the history retention
# surfaces: the `HISTORY` verb, the `GET /history` endpoint (which must
# agree byte-for-byte with `HISTORY EXPORT`), and the
# `--history-export` shutdown dump.
#
# Uses bash's /dev/tcp so no netcat is required. Run from anywhere:
#   bash scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${AUSDB_BIN:-target/release/ausdb}
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN =="
    cargo build --release --bin ausdb
fi

WORK=$(mktemp -d)
SERVER_PID=""
PRIMARY_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    [[ -n "$PRIMARY_PID" ]] && kill "$PRIMARY_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
SNAP="$WORK/state.snap"

fail() {
    echo "SMOKE FAIL: $*" >&2
    echo "--- server stdout ---" >&2 && cat "$WORK"/out* >&2 || true
    echo "--- server stderr ---" >&2 && cat "$WORK"/err* >&2 || true
    exit 1
}

start_server() { # start_server <out-suffix> [extra serve flags...]
    local suffix=$1
    shift
    "$BIN" serve --addr 127.0.0.1:0 --snapshot-path "$SNAP" --window 10 \
        --http-addr 127.0.0.1:0 --trace-json "$WORK/trace$suffix.json" "$@" \
        >"$WORK/out$suffix" 2>"$WORK/err$suffix" &
    SERVER_PID=$!
    for _ in $(seq 1 200); do
        grep -q "^metrics listening on " "$WORK/out$suffix" 2>/dev/null && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before announcing"
        sleep 0.05
    done
    PORT=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/out$suffix" | head -1)
    [[ -n "$PORT" ]] || fail "no 'listening on' line"
    HTTP_PORT=$(sed -n 's/^metrics listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/out$suffix" | head -1)
    [[ -n "$HTTP_PORT" ]] || fail "no 'metrics listening on' line"
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    expect "OK ausdb-serve 1 ready"
}

http_get() { # http_get <target> <body-file> -> status line in $HTTP_STATUS
    exec 4<>"/dev/tcp/127.0.0.1/$HTTP_PORT"
    printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' "$1" >&4
    cat <&4 >"$WORK/http_raw" # server closes after the response
    exec 4<&- 4>&-
    HTTP_STATUS=$(head -1 "$WORK/http_raw" | tr -d '\r')
    # The body starts after the first blank (header-terminating) line.
    awk 'body { print } /^\r?$/ { body = 1 }' "$WORK/http_raw" >"$2"
}

send() { printf '%s\n' "$1" >&3; }

read_reply() { # one line from the server -> $REPLY_LINE
    IFS= read -r -u 3 -t 10 REPLY_LINE || fail "no reply from server"
    REPLY_LINE=${REPLY_LINE%$'\r'}
}

expect() { # expect <glob> — next line must match
    read_reply
    # shellcheck disable=SC2254
    case "$REPLY_LINE" in
        $1) ;;
        *) fail "got '$REPLY_LINE', wanted '$1'" ;;
    esac
}

read_block() { # read lines into file $1 until END/ERR terminator
    : >"$1"
    while read_reply; do
        printf '%s\n' "$REPLY_LINE" >>"$1"
        case "$REPLY_LINE" in
            END*) return 0 ;;
            ERR*) fail "error reply: $REPLY_LINE" ;;
        esac
    done
}

echo "== phase 1: start, ingest, query, stats, snapshot, shutdown =="
start_server 1
send "PING"
expect "OK PONG"
# Three observations in window [100,110); the fourth (ts=112) closes it.
for row in "19,100,56" "19,101,38.5" "19,103,97.25" "19,112,41"; do
    send "INGEST traffic $row"
    expect "OK INGESTED traffic*"
done
send "QUERY SELECT * FROM traffic"
read_block "$WORK/query_before"
grep -q "^SCHEMA " "$WORK/query_before" || fail "query reply lacks SCHEMA"
grep -q "^ROW " "$WORK/query_before" || fail "query reply lacks ROW"
send "STATS"
read_block "$WORK/stats"
grep -q "rows_ingested=4" "$WORK/stats" || fail "stats missing rows_ingested=4"
send "METRICS"
read_block "$WORK/metrics"
grep -q '^# TYPE ausdb_query_latency_seconds histogram$' "$WORK/metrics" ||
    fail "METRICS missing the query latency histogram TYPE line"
grep -q '^ausdb_rows_ingested_total{stream="traffic"} 4$' "$WORK/metrics" ||
    fail "METRICS missing the per-stream ingest counter"
# The HTTP scrape must serve the same exposition as the METRICS verb:
# byte-for-byte identical bodies (METRICS adds only the END terminator).
http_get /metrics "$WORK/http_body"
[[ "$HTTP_STATUS" == "HTTP/1.1 200 OK" ]] || fail "GET /metrics status: $HTTP_STATUS"
sed '$d' "$WORK/metrics" >"$WORK/metrics_body" # drop the END line
diff -u "$WORK/metrics_body" "$WORK/http_body" ||
    fail "GET /metrics body differs from the METRICS protocol reply"
send "HELP"
read_block "$WORK/help"
grep -q '^QUERY ' "$WORK/help" || fail "HELP does not document QUERY"
grep -q '^TRACEX ' "$WORK/help" || fail "HELP does not document TRACEX"
grep -q '^INGESTB ' "$WORK/help" || fail "HELP does not document INGESTB"
send "TRACE 5"
read_block "$WORK/trace"
grep -q '^TRACE #' "$WORK/trace" || fail "TRACE returned no journal entries"
send "SNAPSHOT"
expect "OK SNAPSHOT*"
[[ -s "$SNAP" ]] || fail "snapshot file missing or empty"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&-
wait "$SERVER_PID" || fail "server exited non-zero after SHUTDOWN"
SERVER_PID=""
# --trace-json writes the span ring as Chrome trace-event JSON on exit.
[[ -s "$WORK/trace1.json" ]] || fail "--trace-json wrote no file"
head -1 "$WORK/trace1.json" | grep -q '^\[' || fail "trace JSON does not open an array"
tail -1 "$WORK/trace1.json" | grep -q '^\]' || fail "trace JSON does not close an array"
grep -q '"ph":"X"' "$WORK/trace1.json" || fail "trace JSON has no complete-span events"

echo "== phase 2: restart from snapshot, verify identical state =="
start_server 2
grep -q "restored 1 streams from snapshot" "$WORK/err2" || fail "no restore message"
send "QUERY SELECT * FROM traffic"
read_block "$WORK/query_after"
diff -u "$WORK/query_before" "$WORK/query_after" ||
    fail "restored state answers the query differently"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&-
wait "$SERVER_PID" || fail "restarted server exited non-zero"
SERVER_PID=""

# The same four observations phases 1–2 pushed line-by-line, now fed to
# `ausdb ingest` (the INGESTB binary batch client) via stdin.
ROWS_FILE="$WORK/rows.csv"
printf '%s\n' "19,100,56" "19,101,38.5" "19,103,97.25" "19,112,41" >"$ROWS_FILE"

echo "== phase 3: INGESTB batch ingest answers identically to line ingest =="
SNAP="$WORK/state3.snap"
start_server 3
"$BIN" ingest --addr "127.0.0.1:$PORT" --stream traffic <"$ROWS_FILE" \
    >"$WORK/ingest3" 2>&1 || fail "ausdb ingest failed: $(cat "$WORK/ingest3")"
grep -q "ingested 4 rows" "$WORK/ingest3" || fail "batch client did not report 4 rows"
send "QUERY SELECT * FROM traffic"
read_block "$WORK/query_batch"
diff -u "$WORK/query_before" "$WORK/query_batch" ||
    fail "INGESTB-ingested state answers the query differently from line ingest"
send "STATS"
read_block "$WORK/stats3"
grep -q "rows_ingested=4" "$WORK/stats3" || fail "batch stats missing rows_ingested=4"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&-
wait "$SERVER_PID" || fail "phase-3 server exited non-zero"
SERVER_PID=""

echo "== phase 4: sharded server (--shards 4) is bit-identical too =="
SNAP="$WORK/state4.snap"
start_server 4 --shards 4
"$BIN" ingest --addr "127.0.0.1:$PORT" --stream traffic <"$ROWS_FILE" \
    >"$WORK/ingest4" 2>&1 || fail "sharded ausdb ingest failed: $(cat "$WORK/ingest4")"
send "QUERY SELECT * FROM traffic"
read_block "$WORK/query_sharded"
diff -u "$WORK/query_before" "$WORK/query_sharded" ||
    fail "4-shard state answers the query differently from the single engine"
send "SNAPSHOT"
expect "OK SNAPSHOT*"
[[ -s "$SNAP" ]] || fail "sharded snapshot file missing or empty"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&-
wait "$SERVER_PID" || fail "phase-4 server exited non-zero"
SERVER_PID=""

echo "== phase 5: kill -9 mid-window, WAL replay answers identically =="
SNAP="$WORK/state5.snap"
start_server 5 --wal-dir "$WORK/wal5"
# Three observations land in window [100,110); no close yet, so nothing
# is in the snapshot — only the WAL holds them when we pull the plug.
for row in "19,100,56" "19,101,38.5" "19,103,97.25"; do
    send "INGEST traffic $row"
    expect "OK INGESTED traffic*"
done
send "WALSTAT"
expect "OK WALSTAT role=primary wal=on*last_seq=3*"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
exec 3<&- 3>&-
[[ ! -s "$SNAP" ]] || fail "kill -9 still produced a snapshot"
start_server 5b --wal-dir "$WORK/wal5"
grep -q "replayed 3 WAL records" "$WORK/err5b" || fail "no WAL replay message"
send "INGEST traffic 19,112,41"
expect "OK INGESTED traffic*"
send "QUERY SELECT * FROM traffic"
read_block "$WORK/query_recovered"
diff -u "$WORK/query_before" "$WORK/query_recovered" ||
    fail "state recovered from the WAL answers the query differently"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&-
wait "$SERVER_PID" || fail "phase-5 server exited non-zero"
SERVER_PID=""

echo "== phase 6: follower replicates, rejects writes, promotes =="
SNAP="$WORK/state6p.snap"
start_server 6p --wal-dir "$WORK/wal6p"
for row in "19,100,56" "19,101,38.5" "19,103,97.25" "19,112,41"; do
    send "INGEST traffic $row"
    expect "OK INGESTED traffic*"
done
PRIMARY_PID=$SERVER_PID
PRIMARY_PORT=$PORT
exec 3<&- 3>&-
SNAP="$WORK/state6f.snap"
start_server 6f --wal-dir "$WORK/wal6f" --replicate-from "127.0.0.1:$PRIMARY_PORT"
grep -q "running as read-only follower" "$WORK/err6f" || fail "no follower banner"
for _ in $(seq 1 200); do
    send "WALSTAT"
    read_reply
    case "$REPLY_LINE" in *"last_seq=4"*) break ;; esac
    sleep 0.05
done
case "$REPLY_LINE" in
    "OK WALSTAT role=follower"*"last_seq=4"*) ;;
    *) fail "follower never caught up: $REPLY_LINE" ;;
esac
send "INGEST traffic 1,1,1"
expect "ERR read-only follower*"
send "QUERY SELECT * FROM traffic"
read_block "$WORK/query_follower"
diff -u "$WORK/query_before" "$WORK/query_follower" ||
    fail "follower answers the query differently from the primary workload"
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""
send "PROMOTE"
expect "OK*"
send "INGEST traffic 19,120,50"
expect "OK INGESTED traffic*"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&-
wait "$SERVER_PID" || fail "phase-6 follower exited non-zero"
SERVER_PID=""

echo "== phase 7: health endpoints and the accuracy-SLO watchdog =="
SNAP="$WORK/state7.snap"
start_server 7
http_get /healthz "$WORK/healthz"
[[ "$HTTP_STATUS" == "HTTP/1.1 200 OK" ]] || fail "GET /healthz status: $HTTP_STATUS"
grep -q '"status":"ok"' "$WORK/healthz" || fail "/healthz body not ok: $(cat "$WORK/healthz")"
http_get /readyz "$WORK/readyz"
[[ "$HTTP_STATUS" == "HTTP/1.1 200 OK" ]] || fail "GET /readyz status: $HTTP_STATUS"
grep -q '"name":"bootstrap","ok":true' "$WORK/readyz" ||
    fail "/readyz lacks a passing bootstrap probe: $(cat "$WORK/readyz")"
send "HEALTH"
read_block "$WORK/health"
grep -q '^HEALTH role=primary ready=true ' "$WORK/health" ||
    fail "HEALTH summary line wrong: $(head -1 "$WORK/health")"
# A second connection subscribes and arms an SLO no window can meet;
# the control connection then ingests a window's worth of observations.
exec 5<>"/dev/tcp/127.0.0.1/$PORT"
IFS= read -r -u 5 -t 10 GREETING || fail "no greeting on the subscriber connection"
printf 'SUBSCRIBE SELECT * FROM traffic\n' >&5
IFS= read -r -u 5 -t 10 SUBLINE || fail "no SUBSCRIBE reply"
case "${SUBLINE%$'\r'}" in
    "OK SUBSCRIBED 1 traffic") ;;
    *) fail "unexpected SUBSCRIBE reply: $SUBLINE" ;;
esac
printf 'SLO SET 1 0.000000001\n' >&5
IFS= read -r -u 5 -t 10 SLOLINE || fail "no SLO SET reply"
case "${SLOLINE%$'\r'}" in
    "OK SLO 1 target=0.000000001") ;;
    *) fail "unexpected SLO SET reply: $SLOLINE" ;;
esac
for row in "19,100,56" "19,101,38.5" "19,103,97.25" "19,112,41"; do
    send "INGEST traffic $row"
    expect "OK INGESTED traffic*"
done
# The window close pushes the EVENT block and, since its CI width can
# never beat a 1e-9 target, an ACCURACY notice right behind it.
: >"$WORK/sub7"
for _ in $(seq 1 200); do
    IFS= read -r -u 5 -t 10 NOTICE || fail "subscriber connection closed early"
    printf '%s\n' "${NOTICE%$'\r'}" >>"$WORK/sub7"
    case "$NOTICE" in ACCURACY*) break ;; esac
done
grep -q '^ACCURACY 1 width=.* target=0.000000001$' "$WORK/sub7" ||
    fail "no ACCURACY notice after the window close: $(cat "$WORK/sub7")"
grep -q '^EVENT ' "$WORK/sub7" || fail "subscriber got no EVENT block"
send "SLO LIST"
read_block "$WORK/slo_list"
grep -q '^SLO 1 stream=traffic target=0.000000001 violations=[1-9]' "$WORK/slo_list" ||
    fail "SLO LIST shows no violation: $(cat "$WORK/slo_list")"
http_get /metrics "$WORK/metrics7"
grep -q '^ausdb_accuracy_slo_violations_total{query="1"} [1-9]' "$WORK/metrics7" ||
    fail "violation counter not exported"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&- 5<&- 5>&-
wait "$SERVER_PID" || fail "phase-7 server exited non-zero"
SERVER_PID=""

echo "== phase 8: history retention: verb, HTTP endpoint, export file =="
SNAP="$WORK/state8.snap"
# Sampler off (AUSDB_HISTORY_SAMPLE_MS=0) so the store holds only the
# deterministic accuracy trajectory: the verb reply, the HTTP body, and
# the shutdown export must then all agree byte-for-byte.
export AUSDB_HISTORY_SAMPLE_MS=0
start_server 8 --history-export "$WORK/history8.json"
unset AUSDB_HISTORY_SAMPLE_MS
# A standing query must exist before the window closes for an accuracy
# point to be retained; its event queue is simply never drained.
exec 5<>"/dev/tcp/127.0.0.1/$PORT"
IFS= read -r -u 5 -t 10 GREETING || fail "no greeting on the subscriber connection"
printf 'SUBSCRIBE SELECT * FROM traffic\n' >&5
IFS= read -r -u 5 -t 10 SUBLINE || fail "no SUBSCRIBE reply"
case "${SUBLINE%$'\r'}" in
    "OK SUBSCRIBED 1 traffic") ;;
    *) fail "unexpected SUBSCRIBE reply: $SUBLINE" ;;
esac
for row in "19,100,56" "19,101,38.5" "19,103,97.25" "19,112,41"; do
    send "INGEST traffic $row"
    expect "OK INGESTED traffic*"
done
# Poll until the window-close accuracy point has landed in the store.
for _ in $(seq 1 200); do
    send "HISTORY"
    read_block "$WORK/hist_list"
    grep -q 'kind=accuracy points=1$' "$WORK/hist_list" && break
    sleep 0.05
done
grep -q '^SERIES ausdb_accuracy{query="1"} kind=accuracy points=1$' "$WORK/hist_list" ||
    fail "HISTORY does not list the accuracy trajectory: $(cat "$WORK/hist_list")"
send 'HISTORY ausdb_accuracy{query="1"} LAST 2h'
read_block "$WORK/hist_series"
grep -q '^POINT t=100 .*df_n=3 .*rows=1 late_rows=0$' "$WORK/hist_series" ||
    fail "accuracy point for window 100 missing: $(cat "$WORK/hist_series")"
send "HISTORY EXPORT"
read_block "$WORK/hist_export"
sed '$d' "$WORK/hist_export" >"$WORK/hist_export_body" # drop the END line
http_get /history "$WORK/hist_http"
[[ "$HTTP_STATUS" == "HTTP/1.1 200 OK" ]] || fail "GET /history status: $HTTP_STATUS"
diff -u "$WORK/hist_export_body" "$WORK/hist_http" ||
    fail "GET /history body differs from the HISTORY EXPORT reply"
# Per-series scrape with the brace/quote series name percent-encoded.
http_get '/history?series=ausdb_accuracy%7Bquery%3D%221%22%7D&last=2h' "$WORK/hist_http1"
[[ "$HTTP_STATUS" == "HTTP/1.1 200 OK" ]] || fail "GET /history?series status: $HTTP_STATUS"
grep -q '"t":100' "$WORK/hist_http1" ||
    fail "per-series scrape lacks window 100: $(cat "$WORK/hist_http1")"
http_get /nope "$WORK/http404"
[[ "$HTTP_STATUS" == "HTTP/1.1 404 Not Found" ]] || fail "GET /nope status: $HTTP_STATUS"
grep -q '^try GET /metrics' "$WORK/http404" || fail "404 body lacks the route hint"
send "SHUTDOWN"
expect "OK shutting down"
exec 3<&- 3>&- 5<&- 5>&-
wait "$SERVER_PID" || fail "phase-8 server exited non-zero"
SERVER_PID=""
# --history-export wrote the same dump the live endpoint served.
diff -u "$WORK/hist_http" "$WORK/history8.json" ||
    fail "--history-export file differs from the live GET /history dump"

echo "server smoke OK"
