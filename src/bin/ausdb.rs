//! `ausdb` — the interactive shell and server launcher.
//!
//! Two subcommands:
//!
//! ```text
//! $ cargo run --bin ausdb                       # shell, empty session
//! $ cargo run --bin ausdb -- --demo             # shell with a simulated network
//! $ cargo run --bin ausdb -- serve --addr 127.0.0.1:7878 \
//!       --snapshot-path state.snap              # continuous-query server
//! ausdb> \load traffic.csv roads Segment_ID Time Delay
//! ausdb> SELECT road_id FROM roads HAVING PTEST(delay > 50, 0.66, 0.05);
//! ausdb> EXPLAIN SELECT * FROM roads WHERE delay > 50 PROB 0.66;
//! ausdb> \streams
//! ausdb> \quit
//! ```
//!
//! In the shell, meta-commands start with `\`; anything else is parsed as
//! extended SQL. `EXPLAIN <query>` prints the physical plan instead of
//! running it, and `EXPLAIN ANALYZE <query>` runs the query and annotates
//! each operator with timing, row counts, and accuracy attributes.
//! `serve` starts `ausdb-serve` (see `DESIGN.md` §5 for the wire
//! protocol) and runs until `SHUTDOWN` or Ctrl-C; `--http-addr` exposes
//! `GET /metrics` (plus `/healthz`, `/readyz`, and `/history`) over
//! plain HTTP, `--trace-json FILE` writes the recently traced query
//! spans as Chrome trace-event JSON on shutdown (load it in
//! `chrome://tracing` or Perfetto), and `--history-export FILE` writes
//! the retained metric/accuracy trajectory (the `HISTORY EXPORT` dump)
//! on shutdown.

use std::io::{BufRead, Write};

use ausdb::datagen::cartel::CartelSim;
use ausdb::prelude::*;
use ausdb::serve::server::{Server, ServerConfig};
use ausdb::serve::signal::{install_sigint_handler, interrupted};
use ausdb::serve::state::EngineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("ingest") => run_ingest(&args[1..]),
        Some("shell") => run_shell(&args[1..]),
        None => run_shell(&[]),
        // Back-compat: bare flags (e.g. `ausdb --demo`) mean the shell.
        Some(flag) if flag.starts_with("--") => run_shell(&args),
        Some(other) => {
            eprintln!("error: unknown subcommand '{other}'\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!("usage: ausdb [shell] [--demo]");
    eprintln!("       ausdb serve [--addr HOST:PORT] [--snapshot-path FILE] [--wal-dir DIR]");
    eprintln!("                   [--replicate-from HOST:PORT] [--max-subscribers N]");
    eprintln!("                   [--queue-cap N] [--window SECONDS] [--shards N] [--metrics]");
    eprintln!("                   [--http-addr HOST:PORT] [--trace-json FILE]");
    eprintln!("                   [--history-export FILE]");
    eprintln!("       ausdb ingest [--addr HOST:PORT] [--stream NAME] [--batch N]");
    eprintln!();
    eprintln!("  shell   interactive SQL shell (default); --demo preloads a simulated network");
    eprintln!("  serve   continuous-query TCP server (INGEST/INGESTB/QUERY/SUBSCRIBE/STATS/");
    eprintln!("          METRICS/TRACE/TRACEX/SNAPSHOT/RESTORE/HEALTH/SLO/HELP/SHUTDOWN;");
    eprintln!("          DESIGN.md §5);");
    eprintln!("          --shards N splits ingest across N key-sharded engine states;");
    eprintln!("          --wal-dir logs every accepted batch before apply and replays it");
    eprintln!("          after a crash (AUSDB_FSYNC=always|batch|never sets the sync policy);");
    eprintln!("          --replicate-from starts a read-only follower of that primary");
    eprintln!("          (requires --wal-dir and --snapshot-path; PROMOTE makes it writable);");
    eprintln!("          --metrics dumps the final Prometheus exposition on shutdown;");
    eprintln!("          --http-addr serves the same exposition at GET /metrics plus");
    eprintln!("          liveness/readiness probes at GET /healthz and GET /readyz;");
    eprintln!("          --trace-json writes queued query spans as Chrome trace JSON on exit;");
    eprintln!("          --history-export writes the retained metric/accuracy trajectory");
    eprintln!("          (HISTORY EXPORT JSON; AUSDB_HISTORY_* tune retention) on exit;");
    eprintln!("          AUSDB_LOG_JSON=stderr|FILE mirrors the journal as JSON lines");
    eprintln!("  ingest  read key,ts,value lines from stdin and push them to a server as");
    eprintln!("          binary INGESTB frames of --batch rows (default 4096)");
}

fn run_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig { addr: "127.0.0.1:7878".to_string(), ..Default::default() };
    let mut engine = EngineConfig::default();
    let mut dump_metrics = false;
    let mut trace_json: Option<std::path::PathBuf> = None;
    let mut history_export: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} expects a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--snapshot-path" => {
                config.snapshot_path = Some(std::path::PathBuf::from(value("--snapshot-path")?))
            }
            "--wal-dir" => config.wal_dir = Some(std::path::PathBuf::from(value("--wal-dir")?)),
            "--replicate-from" => config.replicate_from = Some(value("--replicate-from")?.clone()),
            "--max-subscribers" => {
                engine.max_subscribers = value("--max-subscribers")?
                    .parse()
                    .map_err(|_| "bad --max-subscribers value")?
            }
            "--queue-cap" => {
                engine.queue_cap =
                    value("--queue-cap")?.parse().map_err(|_| "bad --queue-cap value")?
            }
            "--window" => {
                let width: u64 = value("--window")?.parse().map_err(|_| "bad --window value")?;
                if width == 0 {
                    return Err("--window must be positive".into());
                }
                engine.learner.window_width = width;
            }
            "--shards" => {
                let shards: usize = value("--shards")?.parse().map_err(|_| "bad --shards value")?;
                if shards == 0 {
                    return Err("--shards must be positive".into());
                }
                engine.shards = shards;
            }
            "--metrics" => dump_metrics = true,
            "--http-addr" => config.http_addr = Some(value("--http-addr")?.clone()),
            "--trace-json" => trace_json = Some(std::path::PathBuf::from(value("--trace-json")?)),
            "--history-export" => {
                history_export = Some(std::path::PathBuf::from(value("--history-export")?))
            }
            other => {
                eprintln!("error: unknown serve flag '{other}'\n");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    config.engine = engine;
    let handle = Server::start(config)?;
    if handle.restored_streams() > 0 {
        eprintln!("restored {} streams from snapshot", handle.restored_streams());
    }
    if handle.replayed_records() > 0 {
        eprintln!("replayed {} WAL records past the snapshot watermark", handle.replayed_records());
    }
    if handle.is_follower() {
        eprintln!("running as read-only follower (send PROMOTE to accept writes)");
    }
    // The smoke test and users scrape this exact line for the bound port.
    println!("listening on {}", handle.addr());
    if let Some(http) = handle.http_addr() {
        println!("metrics listening on {http}");
    }
    std::io::stdout().flush()?;
    install_sigint_handler();
    while !handle.is_finished() && !interrupted() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // Ctrl-C and client SHUTDOWN land in the same place: drain subscriber
    // queues, join every connection thread, write the final snapshot.
    let final_metrics = dump_metrics.then(|| handle.metrics_text());
    let final_history = history_export.as_ref().map(|_| handle.history_json());
    handle.stop();
    eprintln!("server stopped");
    if let Some(text) = final_metrics {
        print!("{text}");
    }
    if let Some(path) = trace_json {
        let traces = ausdb::obs::span::ring().snapshot();
        let json = ausdb::obs::span::chrome_trace_json(&traces);
        std::fs::write(&path, json)?;
        eprintln!("wrote {} traced queries to {}", traces.len(), path.display());
    }
    if let (Some(path), Some(json)) = (history_export, final_history) {
        std::fs::write(&path, &json)?;
        eprintln!("wrote retained history to {}", path.display());
    }
    Ok(())
}

/// `ausdb ingest`: stream `key,ts,value` lines from stdin to a server as
/// binary `INGESTB` frames.
fn run_ingest(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut stream = "traffic".to_string();
    let mut batch: usize = 4096;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} expects a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?.clone(),
            "--stream" => stream = value("--stream")?.clone(),
            "--batch" => {
                batch = value("--batch")?.parse().map_err(|_| "bad --batch value")?;
                if batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            other => {
                eprintln!("error: unknown ingest flag '{other}'\n");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let mut client = ausdb::serve::BatchClient::connect(&addr)?;
    let mut rows: Vec<RawObservation> = Vec::with_capacity(batch);
    let mut total_rows = 0u64;
    let mut total_late = 0u64;
    let mut total_windows = 0u64;
    let mut bad_lines = 0u64;
    let stdin = std::io::stdin();
    let mut flush = |rows: &mut Vec<RawObservation>| -> Result<(), Box<dyn std::error::Error>> {
        if rows.is_empty() {
            return Ok(());
        }
        let out = client.ingest_batch(&stream, rows)?;
        total_rows += out.accepted;
        total_late += out.late;
        total_windows += out.windows_emitted;
        rows.clear();
        Ok(())
    };
    for line in stdin.lock().lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_ingest_line(line) {
            Some(obs) => {
                rows.push(obs);
                if rows.len() >= batch {
                    flush(&mut rows)?;
                }
            }
            None => {
                bad_lines += 1;
                eprintln!("skipping malformed line: {line}");
            }
        }
    }
    flush(&mut rows)?;
    println!(
        "ingested {total_rows} rows into '{stream}' \
         (late={total_late} windows_emitted={total_windows} skipped={bad_lines})"
    );
    Ok(())
}

/// Parses a `key,ts,value` stdin line for `ausdb ingest`.
fn parse_ingest_line(line: &str) -> Option<RawObservation> {
    let cells: Vec<&str> = line.split(',').map(str::trim).collect();
    if cells.len() != 3 {
        return None;
    }
    let key: i64 = cells[0].parse().ok()?;
    let ts: u64 = cells[1].parse().ok()?;
    let value: f64 = cells[2].parse().ok()?;
    value.is_finite().then(|| RawObservation::new(key, ts, value))
}

fn run_shell(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    if args.iter().any(|a| a == "--demo") {
        load_demo(&mut session)?;
        eprintln!("demo session: stream 'roads' registered (simulated CarTel network)");
    }
    eprintln!("ausdb shell — \\help for commands, \\quit to exit");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            write!(out, "ausdb> ")?;
        } else {
            write!(out, "   ...> ")?;
        }
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() && line.starts_with('\\') {
            match run_meta(&mut session, line) {
                MetaResult::Continue => continue,
                MetaResult::Quit => break,
            }
        }
        buffer.push_str(line);
        buffer.push(' ');
        // Statements end with ';' (or a meta-command interrupted us above).
        if line.ends_with(';') {
            let stmt = std::mem::take(&mut buffer);
            run_statement(&session, stmt.trim());
        }
    }
    Ok(())
}

enum MetaResult {
    Continue,
    Quit,
}

fn run_meta(session: &mut Session, line: &str) -> MetaResult {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts[0] {
        "\\quit" | "\\q" => return MetaResult::Quit,
        "\\help" | "\\h" => {
            println!("meta-commands:");
            println!("  \\streams                          list registered streams");
            println!("  \\drop NAME                        unregister a stream");
            println!("  \\load FILE STREAM KEY TS VALUE    ingest a CSV of raw observations,");
            println!("                                    learn per-key distributions, register");
            println!("  \\help, \\quit");
            println!("anything else: extended SQL terminated by ';'");
            println!("  EXPLAIN SELECT ...;               show the physical plan");
            println!("  EXPLAIN ANALYZE SELECT ...;       run it, annotate per-operator timing,");
            println!("                                    rows, and accuracy attributes");
        }
        "\\streams" => {
            for (name, n) in session.streams() {
                println!("  {name}: {n} tuples");
            }
        }
        "\\drop" => match parts.get(1) {
            Some(name) => {
                if session.drop_stream(name) {
                    println!("dropped '{name}'");
                } else {
                    println!("no stream named '{name}'");
                }
            }
            None => println!("usage: \\drop NAME"),
        },
        "\\load" => {
            if parts.len() != 6 {
                println!("usage: \\load FILE STREAM KEY_COL TS_COL VALUE_COL");
            } else if let Err(e) =
                load_csv(session, parts[1], parts[2], parts[3], parts[4], parts[5])
            {
                println!("load failed: {e}");
            }
        }
        other => println!("unknown meta-command {other}; try \\help"),
    }
    MetaResult::Continue
}

fn load_csv(
    session: &mut Session,
    file: &str,
    stream: &str,
    key: &str,
    ts: &str,
    value: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let obs = read_csv_observations(file, &CsvColumns::new(key, ts, value), ',')?;
    let count = obs.len();
    let mut learner = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: u64::MAX,
            min_observations: 2,
        },
        key,
        value,
    );
    learner.observe_all(obs);
    let schema = learner.schema().clone();
    let tuples = learner.emit_window(0)?;
    println!(
        "loaded {count} observations -> {} probabilistic tuples into '{stream}'",
        tuples.len()
    );
    session.register(stream, schema, tuples);
    Ok(())
}

fn run_statement(session: &Session, stmt: &str) {
    match ausdb::sql::run_statement(session, stmt) {
        Ok(ausdb::sql::SqlOutput::Rows { schema, tuples }) => print_rows(&schema, &tuples),
        Ok(ausdb::sql::SqlOutput::Plan(plan)) => println!("{plan}"),
        Err(e) => println!("error: {e}"),
    }
}

fn print_rows(schema: &Schema, rows: &[Tuple]) {
    let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    println!("{}", names.join(" | "));
    for row in rows.iter().take(40) {
        let mut cells: Vec<String> = Vec::with_capacity(row.fields.len());
        for f in &row.fields {
            let mut s = f.value.to_string();
            if let Some(info) = &f.accuracy {
                if let Some(mu) = info.mean_ci {
                    s.push_str(&format!("  mu in {mu} (n={})", info.sample_size));
                }
            }
            cells.push(s);
        }
        let memb = if row.membership.is_certain() {
            String::new()
        } else {
            format!("  [p = {:.3}]", row.membership.p)
        };
        println!("{}{}", cells.join(" | "), memb);
    }
    match rows.len() {
        0 => println!("(no rows)"),
        n if n > 40 => println!("... {n} rows total"),
        n => println!("({n} rows)"),
    }
}

fn load_demo(session: &mut Session) -> Result<(), Box<dyn std::error::Error>> {
    let sim = CartelSim::new(40, 2012);
    let obs = sim.fleet_observations(600, 4.0, 1);
    // Gaussian (not empirical) so windowed aggregates work in the demo.
    let mut learner = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Gaussian,
            level: 0.9,
            window_width: 600,
            min_observations: 3,
        },
        "road_id",
        "delay",
    );
    learner.observe_all(obs);
    let schema = learner.schema().clone();
    let tuples = learner.emit_window(0)?;
    session.register("roads", schema, tuples);
    Ok(())
}
