//! # ausdb — an accuracy-aware uncertain stream database
//!
//! A from-scratch Rust implementation of *"Accuracy-Aware Uncertain Stream
//! Databases"* (Tingjian Ge and Fujun Liu, ICDE 2012).
//!
//! Classic probabilistic stream systems store a probability distribution
//! per uncertain attribute and then *trust it completely*. But those
//! distributions are **learned from samples** — three delay reports for
//! one road, fifty for another — and a distribution learned from three
//! observations deserves far less trust. `ausdb` keeps that accuracy
//! information as a first-class citizen, end to end:
//!
//! 1. **Learning** ([`learn`]) turns raw observation streams into
//!    distributions bundled with confidence intervals on their parameters
//!    (per-bin probabilities for histograms; μ and σ² for anything else).
//! 2. **Query processing** ([`engine`]) propagates accuracy through
//!    queries: the *de-facto sample size* of any derived value is the
//!    minimum sample size among its inputs (Lemma 3), and result
//!    distributions carry intervals computed either analytically
//!    (Theorem 1) or by the `BOOTSTRAP-ACCURACY-INFO` resampling
//!    algorithm.
//! 3. **Decision making** ([`engine::sigpred`]) offers *significance
//!    predicates* — `mTest`, `mdTest`, `pTest` — which only accept a
//!    statement when it is statistically significant, and the
//!    `COUPLED-TESTS` algorithm which bounds both false-positive and
//!    false-negative rates by answering TRUE / FALSE / UNSURE.
//! 4. **SQL** ([`sql`]) exposes all of it textually:
//!    `SELECT road_id FROM t WHERE delay > 50 PROB 0.66`,
//!    `HAVING MTEST(delay, '>', 97, 0.05, 0.05)`,
//!    `WINDOW AVG(delay) SIZE 1000`, `WITH ACCURACY BOOTSTRAP LEVEL 0.9`.
//!
//! ## Quick start
//!
//! ```
//! use ausdb::prelude::*;
//!
//! // Raw delay observations for two roads (Example 1 of the paper):
//! // road 19 was measured 3 times, road 20 fifty times.
//! let mut learner = StreamLearner::with_column_names(
//!     LearnerConfig { kind: DistKind::Empirical, level: 0.9, window_width: 60,
//!                     min_observations: 2 },
//!     "road_id", "delay");
//! learner.observe_all((0..3).map(|i| RawObservation::new(19, i, 60.0 + i as f64 * 18.0)));
//! learner.observe_all((0..50).map(|i| RawObservation::new(20, i % 50, 55.0 + (i % 21) as f64)));
//! let tuples = learner.emit_window(0).unwrap();
//!
//! // Register the probabilistic stream and query it with a significance
//! // predicate: only roads whose "delay > 50 with probability 2/3" claim
//! // is statistically significant survive.
//! let mut session = Session::new();
//! session.register("t", learner.schema().clone(), tuples);
//! let (_schema, rows) = run_sql(
//!     &session,
//!     "SELECT road_id FROM t HAVING PTEST(delay > 50, 0.66, 0.05)",
//! ).unwrap();
//! // Road 19's three observations cannot support the claim; road 20 can.
//! assert_eq!(rows.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Module | Re-export of | Contents |
//! |---|---|---|
//! | [`obs`] | `ausdb-obs` | metrics, trace journal, query-grain spans, env knobs |
//! | [`stats`] | `ausdb-stats` | special functions, distributions, CIs, hypothesis tests, bootstrap |
//! | [`model`] | `ausdb-model` | values, attribute distributions, accuracy info, tuples, schemas |
//! | [`learn`] | `ausdb-learn` | histogram/Gaussian learning + Lemma 1/2 accuracy attachment |
//! | [`engine`] | `ausdb-engine` | expressions, predicates, significance tests, operators, executor |
//! | [`sql`] | `ausdb-sql` | extended-SQL lexer/parser/planner |
//! | [`serve`] | `ausdb-serve` | continuous-query TCP server: live ingest, fan-out, snapshots |
//! | [`datagen`] | `ausdb-datagen` | synthetic families, CarTel-style simulator, workloads |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use ausdb_datagen as datagen;
pub use ausdb_engine as engine;
pub use ausdb_learn as learn;
pub use ausdb_model as model;
pub use ausdb_obs as obs;
pub use ausdb_serve as serve;
pub use ausdb_sql as sql;
pub use ausdb_stats as stats;

/// The most common imports, bundled.
pub mod prelude {
    pub use ausdb_engine::online::{AcquisitionController, SequentialTester};
    pub use ausdb_engine::ops::{
        AccuracyMode, Filter, GroupAggKind, GroupBy, HashJoin, Project, Projection, SigFilter,
        SigMode, TimeWindowAgg, Union, WindowAgg, WindowAggKind,
    };
    pub use ausdb_engine::predicate::{CmpOp, Predicate};
    pub use ausdb_engine::query::{
        execute, GroupBySpec, JoinSpec, Query, QueryConfig, Session, WindowMode, WindowSpec,
    };
    pub use ausdb_engine::sigpred::{
        coupled_tests, CoupledConfig, FieldStats, SigOutcome, SigPredicate,
    };
    pub use ausdb_engine::{BinOp, EngineError, Expr, UnaryOp};
    pub use ausdb_learn::accuracy::{learn_with_accuracy, DistKind};
    pub use ausdb_learn::adaptive::{AdaptiveConfig, AdaptiveLearner, DriftEvent};
    pub use ausdb_learn::drift::{DriftDetector, DriftStatus};
    pub use ausdb_learn::histogram::{BinSpec, HistogramLearner};
    pub use ausdb_learn::ingest::{parse_csv_observations, read_csv_observations, CsvColumns};
    pub use ausdb_learn::learner::{LearnerConfig, RawObservation, StreamLearner};
    pub use ausdb_learn::weighted::{
        WeightedDistKind, WeightedLearnerConfig, WeightedStreamLearner,
    };
    pub use ausdb_model::accuracy::{AccuracyInfo, TupleProbability};
    pub use ausdb_model::dist::{AttrDistribution, Histogram};
    pub use ausdb_model::schema::{Column, ColumnType, Schema};
    pub use ausdb_model::stream::{Batch, TupleStream, VecStream};
    pub use ausdb_model::tuple::{Field, Tuple};
    pub use ausdb_model::value::Value;
    pub use ausdb_sql::planner::run_sql;
    pub use ausdb_stats::ci::ConfidenceInterval;
    pub use ausdb_stats::htest::Alternative;
    pub use ausdb_stats::ks::{ks_test_one_sample, ks_test_two_sample};
    pub use ausdb_stats::weighted::WeightedSummary;
}
