//! Statistical integration tests: do the intervals the system reports
//! actually cover the truth at (about) the advertised rate, end to end
//! through the public API?

use ausdb::engine::bootstrap::bootstrap_accuracy_info;
use ausdb::engine::dfsample::{df_sample_count_ln, df_sample_size};
use ausdb::engine::mc::monte_carlo;
use ausdb::prelude::*;
use ausdb::stats::dist::{ContinuousDistribution, Gamma, Normal};
use ausdb::stats::rng::seeded;
use ausdb::stats::summary::Summary;

#[test]
fn analytical_mean_interval_coverage_through_project() {
    // SELECT (a+b)/2 over Gaussian inputs via the Project operator: the
    // true result mean is (mu_a + mu_b)/2; the analytical 90% CI from
    // Theorem 1 should cover it near-nominally across repetitions.
    let mut rng = seeded(42);
    let da = Normal::new(10.0, 2.0).unwrap();
    let db = Normal::new(20.0, 3.0).unwrap();
    let true_mean = 15.0;
    let trials = 200;
    let mut hits = 0;
    for i in 0..trials {
        let (na, nb) = (12, 18);
        let a = AttrDistribution::empirical(da.sample_n(&mut rng, na)).unwrap();
        let b = AttrDistribution::empirical(db.sample_n(&mut rng, nb)).unwrap();
        let schema = Schema::new(vec![
            Column::new("a", ColumnType::Dist),
            Column::new("b", ColumnType::Dist),
        ])
        .unwrap();
        let tuples = vec![Tuple::certain(0, vec![Field::learned(a, na), Field::learned(b, nb)])];
        let source = VecStream::new(schema, tuples, 4);
        let expr = Expr::bin(
            BinOp::Div,
            Expr::bin(BinOp::Add, Expr::col("a"), Expr::col("b")),
            Expr::Const(2.0),
        );
        let mut proj = Project::new(
            source,
            vec![Projection::new("y", expr)],
            AccuracyMode::Analytical { level: 0.9 },
            800,
            1000 + i,
        )
        .unwrap();
        let out = proj.collect_all();
        let field = &out[0].fields[0];
        assert_eq!(field.sample_size, Some(12), "Lemma 3: min(12, 18)");
        if field.accuracy.as_ref().unwrap().mean_ci.unwrap().contains(true_mean) {
            hits += 1;
        }
    }
    let coverage = hits as f64 / trials as f64;
    assert!(
        coverage > 0.75,
        "90% analytical intervals covered the truth only {coverage} of the time"
    );
}

#[test]
fn bootstrap_interval_coverage_on_skewed_result() {
    // SQRT(ABS(g)) over Gamma inputs is skewed; the bootstrap intervals
    // should still cover the true result mean at a healthy rate.
    let mut rng = seeded(43);
    let g = Gamma::new(2.0, 2.0).unwrap();
    // Ground truth by brute force on the true distribution.
    let truth: f64 = {
        let xs = g.sample_n(&mut rng, 400_000);
        xs.iter().map(|x| x.abs().sqrt()).sum::<f64>() / xs.len() as f64
    };
    let schema = Schema::new(vec![Column::new("g", ColumnType::Dist)]).unwrap();
    let expr = Expr::un(UnaryOp::SqrtAbs, Expr::col("g"));
    let trials = 150;
    let n = 25;
    let mut hits = 0;
    for _ in 0..trials {
        let learned = AttrDistribution::empirical(g.sample_n(&mut rng, n)).unwrap();
        let tuple = Tuple::certain(0, vec![Field::learned(learned, n)]);
        let values = monte_carlo(&expr, &tuple, &schema, 40 * n, &mut rng).unwrap();
        let info = bootstrap_accuracy_info(&values, n, 0.9, None).unwrap();
        if info.mean_ci.unwrap().contains(truth) {
            hits += 1;
        }
    }
    let coverage = hits as f64 / trials as f64;
    assert!(coverage > 0.7, "bootstrap coverage {coverage} too low (target ~0.9)");
}

#[test]
fn df_sample_size_nested_expressions() {
    // Lemma 3 through deeply nested expressions: always the min over the
    // referenced uncertain inputs, regardless of shape.
    let schema = Schema::new(vec![
        Column::new("p", ColumnType::Dist),
        Column::new("q", ColumnType::Dist),
        Column::new("r", ColumnType::Dist),
    ])
    .unwrap();
    let t = Tuple::certain(
        0,
        vec![
            Field::learned(AttrDistribution::gaussian(1.0, 1.0).unwrap(), 31),
            Field::learned(AttrDistribution::gaussian(1.0, 1.0).unwrap(), 17),
            Field::learned(AttrDistribution::gaussian(1.0, 1.0).unwrap(), 59),
        ],
    );
    let e = Expr::un(
        UnaryOp::Square,
        Expr::bin(
            BinOp::Div,
            Expr::bin(BinOp::Add, Expr::col("p"), Expr::un(UnaryOp::SqrtAbs, Expr::col("r"))),
            Expr::bin(BinOp::Sub, Expr::col("q"), Expr::Const(0.5)),
        ),
    );
    assert_eq!(df_sample_size(&e, &t, &schema).unwrap(), Some(17));
    // Dropping q from the expression raises the min to 31.
    let e = Expr::bin(BinOp::Mul, Expr::col("p"), Expr::col("r"));
    assert_eq!(df_sample_size(&e, &t, &schema).unwrap(), Some(31));
    // Lemma 4's count for (17, 31, 59) is astronomically large but finite.
    let ln_c = df_sample_count_ln(&[31, 17, 59]);
    assert!(ln_c > 50.0 && ln_c.is_finite());
}

#[test]
fn window_average_interval_tracks_truth() {
    // The closed-form window AVG over learned Gaussians: its analytic CI
    // must track the true process mean.
    let truth = 100.0;
    let proc = Normal::new(truth, 5.0).unwrap();
    let mut rng = seeded(44);
    let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
    let tuples: Vec<Tuple> = (0..120)
        .map(|i| {
            let sample = proc.sample_n(&mut rng, 20);
            let s = Summary::of(&sample);
            Tuple::certain(
                i,
                vec![Field::learned(
                    AttrDistribution::gaussian(s.mean(), s.variance()).unwrap(),
                    20,
                )],
            )
        })
        .collect();
    let source = VecStream::new(schema, tuples, 16);
    let mut agg = WindowAgg::new(
        source,
        "x",
        WindowAggKind::Avg,
        40,
        AccuracyMode::Analytical { level: 0.9 },
        9,
    )
    .unwrap();
    let out = agg.collect_all();
    assert_eq!(out.len(), 81);
    let hits = out
        .iter()
        .filter(|t| t.fields[0].accuracy.as_ref().unwrap().mean_ci.unwrap().contains(truth))
        .count();
    assert!(
        hits as f64 / out.len() as f64 > 0.6,
        "window CIs covered the truth only {hits}/{} times",
        out.len()
    );
}

#[test]
fn accuracy_mode_none_attaches_nothing() {
    let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
    let tuples = vec![Tuple::certain(
        0,
        vec![Field::learned(AttrDistribution::gaussian(1.0, 1.0).unwrap(), 20)],
    )];
    let q = Query::select_all().with_projections(vec![Projection::new(
        "y",
        Expr::bin(BinOp::Add, Expr::col("x"), Expr::Const(1.0)),
    )]);
    let cfg = QueryConfig { accuracy: AccuracyMode::None, ..QueryConfig::default() };
    let source = VecStream::new(schema, tuples, 4);
    let (_, rows) = execute(source, &q, cfg).unwrap();
    assert!(rows[0].fields[0].accuracy.is_none());
    // But provenance (the d.f. sample size) is still tracked.
    assert_eq!(rows[0].fields[0].sample_size, Some(20));
}
