//! End-to-end integration: raw fleet observations → learner → session →
//! extended SQL → accuracy-aware results. Spans every crate.

use ausdb::datagen::cartel::CartelSim;
use ausdb::prelude::*;

/// Builds a session over a simulated network, exactly as a deployment
/// would: fleet reports in, probabilistic tuples out.
fn cartel_session(segments: usize, minutes: u64) -> (CartelSim, Session) {
    let sim = CartelSim::new(segments, 77);
    let obs = sim.fleet_observations(minutes * 60, 6.0, 5);
    let mut learner = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Empirical,
            level: 0.9,
            window_width: minutes * 60,
            min_observations: 3,
        },
        "road_id",
        "delay",
    );
    learner.observe_all(obs);
    let schema = learner.schema().clone();
    let tuples = learner.emit_window(0).expect("learning succeeds");
    assert!(!tuples.is_empty(), "fleet coverage should produce tuples");
    let mut session = Session::new();
    session.register("roads", schema, tuples);
    (sim, session)
}

#[test]
fn learned_tuples_carry_heterogeneous_accuracy() {
    let (_, session) = cartel_session(30, 10);
    let (_, rows) = run_sql(&session, "SELECT road_id, delay FROM roads").unwrap();
    let mut sizes: Vec<usize> =
        rows.iter().map(|t| t.fields[1].sample_size.expect("learned provenance")).collect();
    sizes.sort_unstable();
    assert!(
        sizes.first() != sizes.last(),
        "report rates vary, so sample sizes must vary: {sizes:?}"
    );
    // Accuracy is attached and wider for less-sampled roads, on average.
    let mut by_n: Vec<(usize, f64)> = rows
        .iter()
        .map(|t| {
            let f = &t.fields[1];
            let ci = f.accuracy.as_ref().unwrap().mean_ci.unwrap();
            let rel = ci.length() / f.value.as_dist().unwrap().mean().max(1.0);
            (f.sample_size.unwrap(), rel)
        })
        .collect();
    by_n.sort_by_key(|&(n, _)| n);
    let small_avg: f64 =
        by_n[..by_n.len() / 3].iter().map(|&(_, l)| l).sum::<f64>() / (by_n.len() / 3) as f64;
    let large_avg: f64 = by_n[2 * by_n.len() / 3..].iter().map(|&(_, l)| l).sum::<f64>()
        / (by_n.len() - 2 * by_n.len() / 3) as f64;
    assert!(
        small_avg > large_avg,
        "relative interval length should shrink with n: small-n {small_avg} vs large-n {large_avg}"
    );
}

#[test]
fn threshold_query_vs_significance_query() {
    let (_, session) = cartel_session(40, 10);
    // Oblivious threshold vs the significance-aware counterpart of the
    // same decision: the significance version must be at least as strict.
    let (_, oblivious) =
        run_sql(&session, "SELECT road_id FROM roads WHERE delay > 60 PROB 0.6").unwrap();
    let (_, aware) =
        run_sql(&session, "SELECT road_id FROM roads HAVING PTEST(delay > 60, 0.6, 0.05)").unwrap();
    assert!(
        aware.len() <= oblivious.len(),
        "significance ({}) cannot pass more tuples than the raw threshold ({})",
        aware.len(),
        oblivious.len()
    );
}

#[test]
fn possible_world_filter_attaches_membership_interval() {
    let (_, session) = cartel_session(25, 10);
    let (_, rows) = run_sql(&session, "SELECT road_id FROM roads WHERE delay > 60").unwrap();
    for t in &rows {
        let m = &t.membership;
        assert!(m.p > 0.0 && m.p <= 1.0);
        if !m.is_certain() {
            let ci = m.ci.expect("filtered tuples carry Lemma 1 intervals");
            assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
            assert!(ci.contains(m.p), "interval {ci} should contain p = {}", m.p);
        }
    }
}

#[test]
fn projection_propagates_df_sample_size() {
    let (_, session) = cartel_session(25, 10);
    // delay/60: same column, so the d.f. sample size must equal the
    // source's.
    let (_, src) = run_sql(&session, "SELECT road_id, delay FROM roads").unwrap();
    let (_, derived) = run_sql(&session, "SELECT road_id, delay / 60 AS mins FROM roads").unwrap();
    for (s, d) in src.iter().zip(&derived) {
        assert_eq!(
            s.fields[1].sample_size, d.fields[1].sample_size,
            "Lemma 3 over a single input preserves n"
        );
        // And the derived mean is the source mean rescaled — up to the
        // Monte-Carlo noise of the projection's value sequence.
        let sm = s.fields[1].value.as_dist().unwrap().mean();
        let sd = s.fields[1].value.as_dist().unwrap().std_dev();
        let m = d.fields[1].value.as_dist().unwrap().raw_sample().map(|v| v.len()).unwrap_or(1000);
        let tol = 4.0 * (sd / 60.0) / (m as f64).sqrt() + 1e-9;
        let dm = d.fields[1].value.as_dist().unwrap().mean();
        assert!((dm - sm / 60.0).abs() < tol, "{dm} vs {} (tol {tol})", sm / 60.0);
    }
}

#[test]
fn window_pipeline_over_live_learned_data() {
    // Gaussian learning + sliding window + significance, all through SQL.
    let sim = CartelSim::new(6, 5);
    let seg = &sim.segments()[0];
    let mut rng = sim.rng_for(1);
    let schema = Schema::new(vec![Column::new("delay", ColumnType::Dist)]).unwrap();
    let tuples: Vec<Tuple> = (0..200)
        .map(|i| {
            let sample = seg.observe_n(&mut rng, 20);
            let (dist, info) = learn_with_accuracy(&sample, DistKind::Gaussian, 0.9).unwrap();
            Tuple::certain(i, vec![Field::learned(dist, 20).with_accuracy(info)])
        })
        .collect();
    let mut session = Session::new();
    session.register("s", schema, tuples);
    let (schema, rows) = run_sql(
        &session,
        "SELECT avg_delay FROM s WINDOW AVG(delay) SIZE 50 WITH ACCURACY ANALYTICAL",
    )
    .unwrap();
    assert_eq!(schema.column(0).name, "avg_delay");
    assert_eq!(rows.len(), 151);
    // Window averages should hug the segment's true mean, and the 90% CI
    // should contain it most of the time.
    let hits = rows
        .iter()
        .filter(|t| {
            t.fields[0].accuracy.as_ref().unwrap().mean_ci.unwrap().contains(seg.true_mean())
        })
        .count();
    assert!(
        hits as f64 / rows.len() as f64 > 0.5,
        "window CIs should usually contain the true mean ({hits}/{})",
        rows.len()
    );
}

#[test]
fn bootstrap_accuracy_clause_end_to_end() {
    let (_, session) = cartel_session(20, 10);
    let (_, rows) = run_sql(
        &session,
        "SELECT delay * 2 AS doubled FROM roads WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 800",
    )
    .unwrap();
    for t in &rows {
        let f = &t.fields[0];
        let info = f.accuracy.as_ref().expect("bootstrap accuracy attached");
        let mu = info.mean_ci.expect("mean interval");
        let dist_mean = f.value.as_dist().unwrap().mean();
        assert!(
            mu.lo <= dist_mean && dist_mean <= mu.hi,
            "bootstrap interval {mu} should bracket the learned mean {dist_mean}"
        );
        assert!(info.variance_ci.is_some());
    }
}
