//! Golden-file test for `EXPLAIN` plan rendering.
//!
//! `EXPLAIN` output is part of the user-facing surface (shell, server
//! `PLAN` lines, docs); this test pins its exact text so accidental
//! renderer changes show up as a reviewable diff. To accept a deliberate
//! change, regenerate the golden file:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test explain_golden
//! ```

use ausdb::prelude::*;
use ausdb::sql::{run_statement, SqlOutput};

const GOLDEN: &str = "tests/golden/explain.txt";

/// One query per operator shape: probabilistic filter, significance
/// filter, count window + bootstrap accuracy, group-by with sort/limit,
/// join with a derived-expression predicate, and a time window.
const QUERIES: &[&str] = &[
    "SELECT road_id FROM t WHERE delay > 50 PROB 0.66",
    "SELECT road_id FROM t HAVING PTEST(delay > 50, 0.66, 0.05)",
    "SELECT avg_delay FROM t WINDOW AVG(delay) SIZE 4 WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 50",
    "SELECT road_id, AVG(delay) FROM t GROUP BY road_id ORDER BY avg_delay DESC LIMIT 2",
    "SELECT road_id, delay, speed_limit FROM t JOIN limits ON road_id \
     WHERE delay - speed_limit > 0 PROB 0.9",
    "SELECT avg_delay FROM t WINDOW AVG(delay) RANGE 60 MIN 1",
];

fn session() -> Session {
    let roads = Schema::new(vec![
        Column::new("road_id", ColumnType::Int),
        Column::new("delay", ColumnType::Dist),
    ])
    .unwrap();
    let tuples = vec![
        Tuple::certain(
            0,
            vec![
                Field::plain(19i64),
                Field::learned(AttrDistribution::gaussian(64.0, 900.0).unwrap(), 3),
            ],
        ),
        Tuple::certain(
            1,
            vec![
                Field::plain(20i64),
                Field::learned(AttrDistribution::gaussian(65.0, 100.0).unwrap(), 50),
            ],
        ),
    ];
    let limits = Schema::new(vec![
        Column::new("road_id", ColumnType::Int),
        Column::new("speed_limit", ColumnType::Float),
    ])
    .unwrap();
    let mut s = Session::new();
    s.register("t", roads, tuples);
    s.register(
        "limits",
        limits,
        vec![Tuple::certain(0, vec![Field::plain(20i64), Field::plain(30.0)])],
    );
    s
}

#[test]
fn explain_plans_match_golden_file() {
    let session = session();
    let mut actual = String::new();
    for q in QUERIES {
        actual.push_str(&format!("-- EXPLAIN {q}\n"));
        match run_statement(&session, &format!("EXPLAIN {q}")) {
            Ok(SqlOutput::Plan(plan)) => {
                actual.push_str(&plan);
                if !plan.ends_with('\n') {
                    actual.push('\n');
                }
            }
            Ok(SqlOutput::Rows { .. }) => panic!("EXPLAIN returned rows for: {q}"),
            Err(e) => panic!("EXPLAIN failed for {q}: {e}"),
        }
        actual.push('\n');
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", GOLDEN)
    });
    assert_eq!(
        actual, expected,
        "EXPLAIN output drifted from {GOLDEN}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test explain_golden"
    );
}

#[test]
fn explain_analyze_smoke_through_facade() {
    // Timings vary run to run, so ANALYZE is asserted structurally rather
    // than pinned in the golden file.
    let session = session();
    let sql = "EXPLAIN ANALYZE SELECT avg_delay FROM t WINDOW AVG(delay) SIZE 2 \
               WITH ACCURACY BOOTSTRAP LEVEL 0.9 SAMPLES 30";
    let Ok(SqlOutput::Plan(plan)) = run_statement(&session, sql) else {
        panic!("EXPLAIN ANALYZE did not return a plan");
    };
    for needle in ["WindowAgg", "in=", "out=", "time=", "ci_width=", "resamples=", "total:"] {
        assert!(plan.contains(needle), "missing {needle:?} in:\n{plan}");
    }
}
