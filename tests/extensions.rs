//! Integration tests for the extensions beyond the paper's core:
//! recency-weighted learning, GROUP BY, JOIN, UNION, and time windows.

use ausdb::learn::weighted::{WeightedLearnerConfig, WeightedStreamLearner};
use ausdb::prelude::*;
use ausdb::stats::dist::{ContinuousDistribution, Normal};
use ausdb::stats::rng::seeded;

#[test]
fn weighted_learner_feeds_significance_predicates() {
    // The road got slow recently. A coupled mTest on the weighted
    // distribution must notice; on the unweighted it must not.
    let mut rng = seeded(17);
    let calm = Normal::new(40.0, 5.0).unwrap();
    let jam = Normal::new(90.0, 8.0).unwrap();
    let mut reports = Vec::new();
    for i in 0..40u64 {
        reports.push(RawObservation::new(1, i * 10, calm.sample(&mut rng)));
    }
    for i in 0..20u64 {
        reports.push(RawObservation::new(1, 400 + i * 10, jam.sample(&mut rng)));
    }
    let now = 620;

    let mut weighted = WeightedStreamLearner::with_column_names(
        WeightedLearnerConfig::gaussian(60.0),
        "road_id",
        "delay",
    );
    weighted.observe_all(reports.iter().copied());
    let w_tuples = weighted.emit_at(now).unwrap();

    let mut unweighted = StreamLearner::with_column_names(
        LearnerConfig {
            kind: DistKind::Gaussian,
            level: 0.9,
            window_width: now + 1,
            min_observations: 2,
        },
        "road_id",
        "delay",
    );
    unweighted.observe_all(reports.iter().copied());
    let u_tuples = unweighted.emit_window(0).unwrap();

    let pred = SigPredicate::m_test(Expr::col("delay"), Alternative::Greater, 65.0);
    let cfg = CoupledConfig::default();
    let schema = weighted.schema().clone();
    let w_out = coupled_tests(&pred, cfg, &w_tuples[0], &schema, &mut rng).unwrap();
    let u_out = coupled_tests(&pred, cfg, &u_tuples[0], unweighted.schema(), &mut rng).unwrap();
    assert_eq!(w_out, SigOutcome::True, "weighted learner sees the jam");
    assert_ne!(u_out, SigOutcome::True, "unweighted average hides the jam");
}

#[test]
fn sql_group_by_after_join() {
    // Delay readings joined with a category table, then grouped by
    // category — two extensions composing.
    let readings_schema = Schema::new(vec![
        Column::new("road_id", ColumnType::Int),
        Column::new("delay", ColumnType::Dist),
    ])
    .unwrap();
    let mk = |road: i64, mu: f64, n: usize| {
        Tuple::certain(
            0,
            vec![
                Field::plain(road),
                Field::learned(AttrDistribution::gaussian(mu, 4.0).unwrap(), n),
            ],
        )
    };
    let categories_schema = Schema::new(vec![
        Column::new("road_id", ColumnType::Int),
        Column::new("kind", ColumnType::Str),
    ])
    .unwrap();
    let cat =
        |road: i64, kind: &str| Tuple::certain(0, vec![Field::plain(road), Field::plain(kind)]);
    let mut s = Session::new();
    s.register(
        "readings",
        readings_schema,
        vec![mk(1, 30.0, 20), mk(2, 40.0, 15), mk(3, 100.0, 25), mk(4, 120.0, 30)],
    );
    s.register(
        "categories",
        categories_schema,
        vec![cat(1, "local"), cat(2, "local"), cat(3, "highway"), cat(4, "highway")],
    );
    let (schema, out) = run_sql(
        &s,
        "SELECT kind, AVG(delay) AS mean_delay FROM readings JOIN categories ON road_id \
         GROUP BY kind",
    )
    .unwrap();
    assert_eq!(schema.column(0).name, "kind");
    assert_eq!(schema.column(1).name, "mean_delay");
    assert_eq!(out.len(), 2);
    // BTreeMap ordering: "highway" before "local".
    assert_eq!(out[0].fields[0].value, Value::Str("highway".into()));
    let d = out[0].fields[1].value.as_dist().unwrap();
    assert!((d.mean() - 110.0).abs() < 1e-9);
    // Lemma 3 over the group: min(25, 30) = 25.
    assert_eq!(out[0].fields[1].sample_size, Some(25));
    let local = out[1].fields[1].value.as_dist().unwrap();
    assert!((local.mean() - 35.0).abs() < 1e-9);
}

#[test]
fn union_feeds_downstream_operators() {
    // Two sensors' streams unioned, then filtered.
    let schema = Schema::new(vec![Column::new("temp", ColumnType::Dist)]).unwrap();
    let mk = |ts: u64, mu: f64| {
        Tuple::certain(ts, vec![Field::learned(AttrDistribution::gaussian(mu, 1.0).unwrap(), 10)])
    };
    let a = VecStream::new(schema.clone(), vec![mk(0, 50.0), mk(1, 90.0)], 4);
    let b = VecStream::new(schema.clone(), vec![mk(0, 95.0), mk(1, 40.0)], 4);
    let u = Union::new(a, b).unwrap();
    let mut f = Filter::new(
        u,
        Predicate::prob_threshold(Expr::col("temp"), CmpOp::Gt, 80.0, 0.9),
        AccuracyMode::None,
        100,
        3,
    );
    let out = f.collect_all();
    assert_eq!(out.len(), 2, "one hot tuple from each sensor");
}

#[test]
fn time_window_tracks_bursty_arrivals() {
    // Readings arrive irregularly; a 60-unit trailing window adapts its
    // effective size to the arrival density.
    let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
    let mk = |ts: u64, mu: f64| {
        Tuple::certain(ts, vec![Field::learned(AttrDistribution::gaussian(mu, 1.0).unwrap(), 20)])
    };
    // Burst at t≈0..20, silence, burst at t≈100.
    let tuples = vec![mk(0, 10.0), mk(10, 12.0), mk(20, 14.0), mk(100, 50.0), mk(110, 52.0)];
    let s = VecStream::new(schema, tuples, 8);
    let mut w = TimeWindowAgg::new(
        s,
        "x",
        WindowAggKind::Avg,
        60,
        1,
        AccuracyMode::Analytical { level: 0.9 },
        5,
    )
    .unwrap();
    let out = w.collect_all();
    assert_eq!(out.len(), 5);
    let last = out.last().unwrap().fields[0].value.as_dist().unwrap();
    assert!(
        (last.mean() - 51.0).abs() < 1e-9,
        "the second burst's window must not include the first burst"
    );
    assert!(out.last().unwrap().fields[0]
        .accuracy
        .as_ref()
        .unwrap()
        .mean_ci
        .unwrap()
        .contains(51.0));
}

#[test]
fn effective_n_visible_through_sql() {
    // Weighted tuples registered in a session: the advertised sample size
    // (effective n) flows into pTest decisions through SQL.
    let mut rng = seeded(23);
    // sd 5 keeps the fresh sensor's mTest decisively significant for any
    // generator stream; the stale sensor still fails on effective n alone.
    let d = Normal::new(100.0, 5.0).unwrap();
    let mut wl = WeightedStreamLearner::with_column_names(
        WeightedLearnerConfig::gaussian(50.0),
        "sensor",
        "temp",
    );
    // 30 fresh observations: plenty of effective evidence.
    for i in 0..30u64 {
        wl.observe(RawObservation::new(1, 400 + i * 3, d.sample(&mut rng)));
    }
    // 30 stale observations for sensor 2 (same values!): little evidence.
    for i in 0..30u64 {
        wl.observe(RawObservation::new(2, i, d.sample(&mut rng)));
    }
    let tuples = wl.emit_at(500).unwrap();
    let mut s = Session::new();
    s.register("t", wl.schema().clone(), tuples);
    let (_, rows) =
        run_sql(&s, "SELECT sensor FROM t HAVING MTEST(temp, '>', 90, 0.05, 0.05)").unwrap();
    // Sensor 1 (fresh data) is significant; sensor 2's stale data has an
    // effective n too small to support the claim.
    assert_eq!(rows.len(), 1, "only the freshly-observed sensor passes");
    assert_eq!(rows[0].fields[0].value, Value::Int(1));
}
