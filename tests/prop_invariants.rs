//! Property-based tests (proptest) on core invariants, exercised through
//! the public API.

use ausdb::engine::predicate::prob_cmp;
use ausdb::prelude::*;
use ausdb::stats::ci::{
    mean_interval, percentile_interval, proportion_interval, variance_interval,
};
use ausdb::stats::dist::{
    ChiSquared, ContinuousDistribution, Exponential, Gamma, Normal, StudentT, Uniform, Weibull,
};
use ausdb::stats::special::{
    inv_reg_gamma_p, inv_std_normal_cdf, reg_gamma_p, reg_inc_beta, std_normal_cdf,
};
use proptest::prelude::*;

proptest! {
    // ---------------- special functions ----------------

    #[test]
    fn normal_cdf_quantile_roundtrip(p in 1e-6..=0.999_999f64) {
        let x = inv_std_normal_cdf(p);
        prop_assert!((std_normal_cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn reg_gamma_p_monotone_in_x(a in 0.2..=50.0f64, x in 0.0..=100.0f64, dx in 0.01..=5.0f64) {
        prop_assert!(reg_gamma_p(a, x + dx) >= reg_gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn inv_reg_gamma_roundtrip(a in 0.3..=40.0f64, p in 0.001..=0.999f64) {
        let x = inv_reg_gamma_p(a, p);
        prop_assert!((reg_gamma_p(a, x) - p).abs() < 1e-6);
    }

    #[test]
    fn inc_beta_symmetry(a in 0.2..=20.0f64, b in 0.2..=20.0f64, x in 0.001..=0.999f64) {
        let lhs = reg_inc_beta(a, b, x);
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    // ---------------- distributions ----------------

    #[test]
    fn gaussian_cdf_bounds(mu in -100.0..=100.0f64, sigma in 0.01..=50.0f64, x in -500.0..=500.0f64) {
        let d = Normal::new(mu, sigma).unwrap();
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        // Symmetry around the mean.
        let mirrored = d.cdf(2.0 * mu - x);
        prop_assert!((c + mirrored - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_roundtrips_for_all_families(p in 0.01..=0.99f64) {
        prop_assert!((Exponential::new(1.0).unwrap().cdf(Exponential::new(1.0).unwrap().quantile(p)) - p).abs() < 1e-9);
        prop_assert!((Gamma::new(2.0, 2.0).unwrap().cdf(Gamma::new(2.0, 2.0).unwrap().quantile(p)) - p).abs() < 1e-6);
        prop_assert!((Uniform::new(0.0, 1.0).unwrap().cdf(Uniform::new(0.0, 1.0).unwrap().quantile(p)) - p).abs() < 1e-12);
        prop_assert!((Weibull::new(1.0, 1.0).unwrap().cdf(Weibull::new(1.0, 1.0).unwrap().quantile(p)) - p).abs() < 1e-9);
        prop_assert!((StudentT::new(9.0).unwrap().cdf(StudentT::new(9.0).unwrap().quantile(p)) - p).abs() < 1e-7);
        prop_assert!((ChiSquared::new(9.0).unwrap().cdf(ChiSquared::new(9.0).unwrap().quantile(p)) - p).abs() < 1e-7);
    }

    // ---------------- confidence intervals ----------------

    #[test]
    fn proportion_interval_contains_estimate(p in 0.0..=1.0f64, n in 1usize..200, level in 0.5..0.995f64) {
        let ci = proportion_interval(p, n, level);
        prop_assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
        // Wilson's interval may not be centered on p̂ but must contain it.
        prop_assert!(ci.lo <= p + 1e-12 && p <= ci.hi + 1e-12, "{ci} vs {p}");
    }

    #[test]
    fn proportion_interval_narrows_with_n(p in 0.05..=0.95f64, n in 5usize..100) {
        let small = proportion_interval(p, n, 0.9);
        let large = proportion_interval(p, n * 4, 0.9);
        prop_assert!(large.length() <= small.length() + 1e-12);
    }

    #[test]
    fn mean_interval_monotone_in_level(m in -50.0..=50.0f64, s in 0.01..=20.0f64, n in 2usize..200) {
        let lo = mean_interval(m, s, n, 0.8);
        let hi = mean_interval(m, s, n, 0.99);
        prop_assert!(hi.length() >= lo.length());
        prop_assert!(lo.contains(m) && hi.contains(m));
    }

    #[test]
    fn variance_interval_contains_s2(s2 in 0.0001..=1000.0f64, n in 2usize..200) {
        let ci = variance_interval(s2, n, 0.9);
        prop_assert!(ci.lo > 0.0);
        prop_assert!(ci.contains(s2), "{ci} should contain {s2}");
    }

    #[test]
    fn percentile_interval_within_data(values in prop::collection::vec(-1e6..1e6f64, 2..200), level in 0.5..0.99f64) {
        let ci = percentile_interval(&values, level);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(ci.lo >= min - 1e-9 && ci.hi <= max + 1e-9);
    }

    // ---------------- model invariants ----------------

    #[test]
    fn histogram_probabilities_normalized(raw in prop::collection::vec(0.01..10.0f64, 1..12)) {
        let edges: Vec<f64> = (0..=raw.len()).map(|i| i as f64).collect();
        let h = Histogram::new(edges, raw).unwrap();
        let total: f64 = h.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((h.cdf(h.edges()[h.num_bins()]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_cmp_complementary(mu in -10.0..=10.0f64, var in 0.01..=25.0f64, t in -30.0..=30.0f64) {
        let d = AttrDistribution::gaussian(mu, var).unwrap();
        let gt = prob_cmp(&d, CmpOp::Gt, t);
        let le = prob_cmp(&d, CmpOp::Le, t);
        prop_assert!((gt + le - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_mean_matches_sample(xs in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let expected = xs.iter().sum::<f64>() / xs.len() as f64;
        let d = AttrDistribution::empirical(xs).unwrap();
        prop_assert!((d.mean() - expected).abs() < 1e-6);
    }

    // ---------------- learning invariants ----------------

    #[test]
    fn learner_bin_cis_bracket_heights(xs in prop::collection::vec(-100.0..100.0f64, 8..80)) {
        // Guard against degenerate constant samples.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1e-6);
        let (dist, info) = learn_with_accuracy(&xs, DistKind::Histogram(BinSpec::Fixed(4)), 0.9).unwrap();
        let AttrDistribution::Histogram(h) = dist else { panic!("expected histogram") };
        let cis = info.bin_cis.as_ref().unwrap();
        for (ci, &p) in cis.iter().zip(h.probs()) {
            prop_assert!(ci.lo <= p + 1e-9 && p <= ci.hi + 1e-9, "{ci} vs bin height {p}");
        }
    }
}

proptest! {
    // ---------------- weighted statistics ----------------

    #[test]
    fn weighted_uniform_matches_unweighted(xs in prop::collection::vec(-1e3..1e3f64, 2..60)) {
        use ausdb::stats::summary::Summary;
        let pairs: Vec<(f64, f64)> = xs.iter().map(|&x| (x, 1.0)).collect();
        let ws = WeightedSummary::of(&pairs);
        let s = Summary::of(&xs);
        prop_assert!((ws.mean() - s.mean()).abs() < 1e-6);
        prop_assert!((ws.effective_n() - xs.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn kish_n_between_one_and_count(
        pairs in prop::collection::vec((-1e3..1e3f64, 0.001..10.0f64), 1..60)
    ) {
        let ws = WeightedSummary::of(&pairs);
        let n_eff = ws.effective_n();
        prop_assert!(n_eff >= 1.0 - 1e-9, "n_eff {n_eff}");
        prop_assert!(n_eff <= pairs.len() as f64 + 1e-9, "n_eff {n_eff} > count");
    }

    #[test]
    fn weighted_mean_within_value_range(
        pairs in prop::collection::vec((-1e3..1e3f64, 0.001..10.0f64), 1..60)
    ) {
        let ws = WeightedSummary::of(&pairs);
        let min = pairs.iter().map(|&(x, _)| x).fold(f64::MAX, f64::min);
        let max = pairs.iter().map(|&(x, _)| x).fold(f64::MIN, f64::max);
        prop_assert!(ws.mean() >= min - 1e-9 && ws.mean() <= max + 1e-9);
    }

    // ---------------- expression round trips ----------------

    /// Engine expressions printed with Display re-parse to the same tree
    /// through the SQL front end.
    #[test]
    fn expr_display_reparses(seed in 0u64..500) {
        use ausdb::datagen::workload::WorkloadGen;
        let q = WorkloadGen::paper(42).generate(seed);
        let sql = format!("SELECT {} FROM s", q.expr);
        let stmt = ausdb::sql::parse(&sql).expect("Display output must parse");
        let planned = ausdb::sql::plan(&stmt, None).expect("plans without schema");
        let reparsed = &planned.query.projections[0].expr;
        prop_assert_eq!(
            format!("{}", reparsed),
            format!("{}", q.expr),
            "round trip changed the tree"
        );
    }

    // ---------------- online control ----------------

    #[test]
    fn acquisition_interval_narrows_monotonically_in_n(
        target in 0.5..5.0f64,
        base in -100.0..100.0f64
    ) {
        let mut c = AcquisitionController::new(target, 0.9);
        let mut prev = f64::INFINITY;
        // A deterministic alternating sequence: width must shrink with n.
        for i in 0..60 {
            let x = base + if i % 2 == 0 { 1.0 } else { -1.0 };
            c.observe(x);
            if c.n() >= 5 && c.n().is_multiple_of(10) {
                let w = c.current_interval().length();
                prop_assert!(w <= prev + 1e-9, "width {w} grew past {prev}");
                prev = w;
            }
        }
    }
}

// ---------------- whole-pipeline robustness ----------------

/// A session with a small mixed-schema stream for generated queries.
fn fuzz_session() -> Session {
    use ausdb::stats::dist::{ContinuousDistribution, Normal};
    use ausdb::stats::rng::seeded;
    let schema = Schema::new(vec![
        Column::new("id", ColumnType::Int),
        Column::new("a", ColumnType::Dist),
        Column::new("b", ColumnType::Dist),
        Column::new("k", ColumnType::Float),
    ])
    .unwrap();
    let mut rng = seeded(4242);
    let d = Normal::new(10.0, 3.0).unwrap();
    let tuples: Vec<Tuple> = (0..6)
        .map(|i| {
            Tuple::certain(
                i,
                vec![
                    Field::plain((i % 3) as i64),
                    Field::learned(
                        AttrDistribution::empirical(d.sample_n(&mut rng, 12)).unwrap(),
                        12,
                    ),
                    Field::learned(
                        AttrDistribution::gaussian(5.0 + i as f64, 2.0).unwrap(),
                        8 + i as usize,
                    ),
                    Field::plain(i as f64),
                ],
            )
        })
        .collect();
    let mut s = Session::new();
    s.register("t", schema, tuples);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structurally valid generated queries must never panic: they either
    /// produce rows or a clean error.
    #[test]
    fn generated_queries_never_panic(
        col in prop::sample::select(vec!["a", "b", "k", "id"]),
        op in prop::sample::select(vec![">", "<", ">=", "<=", "=", "<>"]),
        threshold in -20.0..40.0f64,
        tau in 0.05..0.95f64,
        limit in 0usize..10,
        desc in proptest::bool::ANY,
        clause in 0u8..6,
    ) {
        let s = fuzz_session();
        let sql = match clause {
            0 => format!("SELECT id, {col} FROM t WHERE {col} {op} {threshold}"),
            1 => format!(
                "SELECT id FROM t WHERE {col} {op} {threshold} PROB {tau} LIMIT {limit}"
            ),
            2 => format!(
                "SELECT id FROM t HAVING MTEST({col}, '>', {threshold}, 0.05, 0.05)"
            ),
            3 => format!(
                "SELECT id FROM t HAVING PTEST({col} > {threshold}, {tau}, 0.05)                  ORDER BY id {}",
                if desc { "DESC" } else { "ASC" }
            ),
            4 => format!("SELECT id, AVG({col}) FROM t GROUP BY id LIMIT {limit}"),
            5 => format!(
                "SELECT {col} / 2 AS half FROM t ORDER BY half {} LIMIT {limit}",
                if desc { "DESC" } else { "ASC" }
            ),
            _ => unreachable!(),
        };
        // Must not panic; both Ok and Err are acceptable outcomes (e.g. a
        // significance predicate over the deterministic column errs).
        let _ = run_sql(&s, &sql);
    }
}

// ---------------- SQL robustness ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = ausdb::sql::parse(&input);
    }

    /// Structured garbage: keyword soup stays panic-free too.
    #[test]
    fn parser_survives_keyword_soup(parts in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "FROM", "WHERE", "WINDOW", "HAVING", "WITH", "ACCURACY",
            "MTEST", "PTEST", "AVG", "(", ")", ",", "*", "+", "-", "/",
            ">", "<", "<>", "=", "PROB", "1", "0.5", "x", "'>'", ";",
        ]),
        0..25,
    )) {
        let q = parts.join(" ");
        let _ = ausdb::sql::parse(&q);
    }
}
