//! Integration tests for the `ausdb` binary's subcommand handling and the
//! crate-level `serve` re-export.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

use ausdb::serve::server::{Server, ServerConfig};

#[test]
fn unknown_subcommand_exits_nonzero_with_usage() {
    let out =
        Command::new(env!("CARGO_BIN_EXE_ausdb")).arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success(), "unknown subcommand must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand 'frobnicate'"), "got: {stderr}");
    assert!(stderr.contains("usage: ausdb"), "usage text expected, got: {stderr}");
}

#[test]
fn unknown_serve_flag_exits_nonzero_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_ausdb"))
        .args(["serve", "--bogus-flag"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown serve flag '--bogus-flag'"), "got: {stderr}");
}

#[test]
fn serve_binary_speaks_the_protocol_and_shuts_down() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ausdb"))
        .args(["serve", "--addr", "127.0.0.1:0", "--window", "10"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    // The serve subcommand prints "listening on HOST:PORT" on stdout.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout);
    let mut announce = String::new();
    lines.read_line(&mut announce).unwrap();
    let addr = announce.trim().strip_prefix("listening on ").expect("announce line").to_string();

    let stream = TcpStream::connect(&addr).expect("connect to announced addr");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK ausdb-serve 1 ready");
    writer.write_all(b"PING\nSHUTDOWN\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK PONG");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK shutting down");

    let status = child.wait().expect("server exits after SHUTDOWN");
    assert!(status.success(), "clean exit, got {status:?}");
}

#[test]
fn serve_reexport_is_usable_from_the_facade() {
    let handle = Server::start(ServerConfig::default()).expect("start via ausdb::serve");
    assert_ne!(handle.addr().port(), 0, "a real port was bound");
    handle.stop();
}
