//! Integration tests for significance predicates, including the paper's
//! worked Examples 8 and 9 run end-to-end through the engine and SQL.

use ausdb::prelude::*;
use ausdb::stats::rng::seeded;

/// Example 8's two temperature fields: X from 5 raw observations,
/// Y from 100 (40 below 100, 60 above), same mean story.
fn example8_session() -> Session {
    let schema = Schema::new(vec![
        Column::new("id", ColumnType::Int),
        Column::new("temperature", ColumnType::Dist),
    ])
    .unwrap();
    let x = AttrDistribution::empirical(vec![82.0, 86.0, 105.0, 110.0, 119.0]).unwrap();
    let mut y_raw = vec![95.0; 40];
    y_raw.extend(std::iter::repeat_n(104.0, 60));
    let y = AttrDistribution::empirical(y_raw).unwrap();
    let tuples = vec![
        Tuple::certain(0, vec![Field::plain(1i64), Field::learned(x, 5)]),
        Tuple::certain(1, vec![Field::plain(2i64), Field::learned(y, 100)]),
    ];
    let mut s = Session::new();
    s.register("stream", schema, tuples);
    s
}

#[test]
fn example8_probability_threshold_accepts_both() {
    // P1: temperature >_{0.5} 100 — both fields have Pr ≈ 0.6 > 0.5, so
    // the accuracy-oblivious predicate accepts both (the problem!).
    let s = example8_session();
    let (_, rows) = run_sql(&s, "SELECT id FROM stream WHERE temperature > 100 PROB 0.5").unwrap();
    assert_eq!(rows.len(), 2, "accuracy-oblivious threshold keeps both");
}

#[test]
fn example9_ptest_keeps_only_y() {
    // pTest("temperature > 100", 0.5, 0.05): only Y satisfies.
    let s = example8_session();
    let (_, rows) =
        run_sql(&s, "SELECT id FROM stream HAVING PTEST(temperature > 100, 0.5, 0.05)").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].fields[0].value, Value::Int(2));
}

#[test]
fn example9_mtest_keeps_only_y() {
    // mTest(temperature, ">", 97, 0.05): only Y satisfies.
    let s = example8_session();
    let (_, rows) =
        run_sql(&s, "SELECT id FROM stream HAVING MTEST(temperature, '>', 97, 0.05)").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].fields[0].value, Value::Int(2));
}

#[test]
fn coupled_sql_form_distinguishes_three_outcomes() {
    let s = example8_session();
    // With the coupled form (two alphas), X is UNSURE for the ">" claim
    // (dropped), Y is TRUE (kept). For the "<" claim Y is FALSE.
    let (_, gt) =
        run_sql(&s, "SELECT id FROM stream HAVING MTEST(temperature, '>', 97, 0.05, 0.05)")
            .unwrap();
    assert_eq!(gt.len(), 1);
    let (_, lt) =
        run_sql(&s, "SELECT id FROM stream HAVING MTEST(temperature, '<', 97, 0.05, 0.05)")
            .unwrap();
    assert!(lt.is_empty(), "nobody's mean is significantly below 97");
}

#[test]
fn coupled_two_sided_never_false_at_engine_level() {
    // Theorem 3's '<>' case: the coupled test splits alpha1 and cannot
    // return FALSE. Exercise through the public engine API.
    let schema = Schema::new(vec![Column::new("x", ColumnType::Dist)]).unwrap();
    let mut rng = seeded(3);
    let pred = SigPredicate::m_test(Expr::col("x"), Alternative::TwoSided, 10.0);
    let config = CoupledConfig::default();
    for mean in [0.0, 5.0, 9.9, 10.0, 10.1, 20.0] {
        let t = Tuple::certain(
            0,
            vec![Field::learned(AttrDistribution::gaussian(mean, 4.0).unwrap(), 25)],
        );
        let out = coupled_tests(&pred, config, &t, &schema, &mut rng).unwrap();
        assert_ne!(out, SigOutcome::False, "two-sided coupled test returned FALSE at mean {mean}");
    }
}

#[test]
fn error_rates_hold_through_the_full_query_path() {
    // Simulated verification of Theorem 3 THROUGH SQL: repeat a coupled
    // mTest query over fresh samples where H1 is false; TRUE answers are
    // false positives and must stay near alpha1.
    use ausdb::stats::dist::{ContinuousDistribution, Normal};
    let d = Normal::new(50.0, 8.0).unwrap();
    let mut rng = seeded(11);
    let trials = 300;
    let mut fp = 0;
    for _ in 0..trials {
        let sample = d.sample_n(&mut rng, 20);
        let (dist, info) = learn_with_accuracy(&sample, DistKind::Empirical, 0.9).unwrap();
        let schema = Schema::new(vec![Column::new("v", ColumnType::Dist)]).unwrap();
        let tuples = vec![Tuple::certain(0, vec![Field::learned(dist, 20).with_accuracy(info)])];
        let mut s = Session::new();
        s.register("t", schema, tuples);
        // H1 "mean > 50" is false (equality): TRUE ⇒ false positive.
        let (_, rows) =
            run_sql(&s, "SELECT v FROM t HAVING MTEST(v, '>', 50, 0.05, 0.05)").unwrap();
        if !rows.is_empty() {
            fp += 1;
        }
    }
    let rate = fp as f64 / trials as f64;
    assert!(rate <= 0.09, "SQL-path false-positive rate {rate} exceeds the 0.05 spec");
}

#[test]
fn mdtest_sql_between_two_fields() {
    let schema =
        Schema::new(vec![Column::new("a", ColumnType::Dist), Column::new("b", ColumnType::Dist)])
            .unwrap();
    let tuples = vec![Tuple::certain(
        0,
        vec![
            Field::learned(AttrDistribution::gaussian(10.0, 1.0).unwrap(), 40),
            Field::learned(AttrDistribution::gaussian(8.0, 1.0).unwrap(), 40),
        ],
    )];
    let mut s = Session::new();
    s.register("t", schema, tuples);
    let (_, rows) = run_sql(&s, "SELECT a FROM t HAVING MDTEST(a, b, '>', 0, 0.05, 0.05)").unwrap();
    assert_eq!(rows.len(), 1, "a's mean is significantly above b's");
    let (_, rows) = run_sql(&s, "SELECT a FROM t HAVING MDTEST(a, b, '<', 0, 0.05, 0.05)").unwrap();
    assert!(rows.is_empty());
}
